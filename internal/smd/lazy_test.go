package smd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLazyGreedyMatchesEager: lazy evaluation must produce the same
// value as the eager engine (the selection rule is identical; only the
// evaluation schedule differs).
func TestLazyGreedyMatchesEager(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(141))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 2+r.Intn(14), 1+r.Intn(6))
		eager, err := Greedy(in)
		if err != nil {
			return false
		}
		lazy, err := LazyGreedy(in)
		if err != nil {
			return false
		}
		const tol = 1e-9
		return abs(eager.SemiValue-lazy.SemiValue) < tol &&
			abs(eager.AugmentedValue-lazy.AugmentedValue) < tol
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestLazyGreedyIdenticalAssignments goes further on a batch of seeds:
// with deterministic tie-breaking the assignments themselves coincide.
func TestLazyGreedyIdenticalAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 30; trial++ {
		in := randomSMDInstance(rng, 12, 5)
		eager, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := LazyGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < in.NumUsers(); u++ {
			e, l := eager.Semi.UserStreams(u), lazy.Semi.UserStreams(u)
			if len(e) != len(l) {
				t.Fatalf("trial %d user %d: eager %v lazy %v", trial, u, e, l)
			}
			for i := range e {
				if e[i] != l[i] {
					t.Fatalf("trial %d user %d: eager %v lazy %v", trial, u, e, l)
				}
			}
		}
	}
}

func TestLazyGreedySemiFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	for trial := 0; trial < 20; trial++ {
		in := randomSMDInstance(rng, 15, 6)
		res, err := LazyGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Semi.CheckSemiFeasible(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLazyGreedyRejectsInvalid(t *testing.T) {
	in := handInstance()
	in.Budget = -1
	if _, err := LazyGreedy(in); err == nil {
		t.Fatal("LazyGreedy accepted an invalid instance")
	}
}

func TestLazyGreedyEmpty(t *testing.T) {
	res, err := LazyGreedy(&Instance{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SemiValue != 0 {
		t.Fatalf("empty instance value = %v", res.SemiValue)
	}
}

func BenchmarkLazyVsEagerGreedy(b *testing.B) {
	in := benchInstance(b, 400, 50)
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Greedy(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LazyGreedy(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
