package smd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLazyGreedyMatchesEager: lazy evaluation must produce the same
// value as the eager engine (the selection rule is identical; only the
// evaluation schedule differs).
func TestLazyGreedyMatchesEager(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(141))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 2+r.Intn(14), 1+r.Intn(6))
		eager, err := Greedy(in)
		if err != nil {
			return false
		}
		lazy, err := LazyGreedy(in)
		if err != nil {
			return false
		}
		const tol = 1e-9
		return abs(eager.SemiValue-lazy.SemiValue) < tol &&
			abs(eager.AugmentedValue-lazy.AugmentedValue) < tol
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestLazyGreedyIdenticalAssignments goes further on a batch of seeds:
// with deterministic tie-breaking the assignments themselves coincide.
func TestLazyGreedyIdenticalAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 30; trial++ {
		in := randomSMDInstance(rng, 12, 5)
		eager, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := LazyGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < in.NumUsers(); u++ {
			e, l := eager.Semi.UserStreams(u), lazy.Semi.UserStreams(u)
			if len(e) != len(l) {
				t.Fatalf("trial %d user %d: eager %v lazy %v", trial, u, e, l)
			}
			for i := range e {
				if e[i] != l[i] {
					t.Fatalf("trial %d user %d: eager %v lazy %v", trial, u, e, l)
				}
			}
		}
	}
}

func TestLazyGreedySemiFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	for trial := 0; trial < 20; trial++ {
		in := randomSMDInstance(rng, 15, 6)
		res, err := LazyGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Semi.CheckSemiFeasible(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLazyGreedyRejectsInvalid(t *testing.T) {
	in := handInstance()
	in.Budget = -1
	if _, err := LazyGreedy(in); err == nil {
		t.Fatal("LazyGreedy accepted an invalid instance")
	}
}

func TestLazyGreedyEmpty(t *testing.T) {
	res, err := LazyGreedy(&Instance{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SemiValue != 0 {
		t.Fatalf("empty instance value = %v", res.SemiValue)
	}
}

// TestFixedGreedyLazySelectionEquivalence enforces the property
// FixedGreedy's wiring relies on (its greedy phase now runs through
// LazyGreedy): on randomized instances the lazy and eager engines make
// the identical selection sequence — not merely the same final set —
// with identical values and last-assigned bookkeeping, so the full
// Theorem 2.8 fix-up (A1/A2/AMax) is unchanged by the swap.
func TestFixedGreedyLazySelectionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	for trial := 0; trial < 60; trial++ {
		in := randomSMDInstance(rng, 2+rng.Intn(25), 1+rng.Intn(8))
		eager, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := LazyGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(eager.Order) != len(lazy.Order) {
			t.Fatalf("trial %d: selection sequences %v vs %v", trial, eager.Order, lazy.Order)
		}
		for i := range eager.Order {
			if eager.Order[i] != lazy.Order[i] {
				t.Fatalf("trial %d: selection sequences diverge at %d: %v vs %v",
					trial, i, eager.Order, lazy.Order)
			}
		}
		if eager.SemiValue != lazy.SemiValue || eager.AugmentedValue != lazy.AugmentedValue {
			t.Fatalf("trial %d: values diverged: %v/%v vs %v/%v", trial,
				eager.SemiValue, eager.AugmentedValue, lazy.SemiValue, lazy.AugmentedValue)
		}
		for u := range eager.LastAssigned {
			if eager.LastAssigned[u] != lazy.LastAssigned[u] {
				t.Fatalf("trial %d: LastAssigned[%d] = %d vs %d", trial, u,
					eager.LastAssigned[u], lazy.LastAssigned[u])
			}
		}

		// The repaired result must therefore also be identical to one
		// built from the eager engine's output.
		fixed, err := FixedGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		a1, a2 := splitCandidates(in, eager)
		amax, _ := bestSingleStream(in)
		best, bestVal := pickBest(in, a1, a2, amax)
		if fixed.BestValue != bestVal {
			t.Fatalf("trial %d: FixedGreedy value diverged from eager-built fix-up: %v vs %v",
				trial, fixed.BestValue, bestVal)
		}
		for u := 0; u < in.NumUsers(); u++ {
			got, want := fixed.Best.UserStreams(u), best.UserStreams(u)
			if len(got) != len(want) {
				t.Fatalf("trial %d user %d: fixed %v, eager-built %v", trial, u, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d user %d: fixed %v, eager-built %v", trial, u, got, want)
				}
			}
		}
	}
}

func BenchmarkLazyVsEagerGreedy(b *testing.B) {
	in := benchInstance(b, 400, 50)
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Greedy(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LazyGreedy(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
