package smd

import (
	"fmt"
	"math"
)

// FixedResult is the output of FixedGreedy and PartialEnum: a feasible
// assignment plus the intermediate candidates, exposed so experiments
// can measure each piece of the Theorem 2.8 construction.
type FixedResult struct {
	// Best is the best feasible candidate.
	Best *Assignment
	// BestValue is w(Best) (caps never bind on feasible assignments, so
	// this is also the plain utility sum).
	BestValue float64
	// A1 is the greedy assignment minus each user's last stream.
	A1 *Assignment
	// A2 assigns each user only its last greedy stream.
	A2 *Assignment
	// AMax is the best single-stream assignment.
	AMax *Assignment
	// Greedy is the raw greedy result the candidates were derived from
	// (nil for PartialEnum seeds other than the winning one).
	Greedy *Result
	// SemiBestValue is max(w(greedy), w(AMax)) — the semi-feasible value
	// Lemma 2.6 bounds by (e-1)/2e · OPT.
	SemiBestValue float64
}

// bestSingleStream builds Amax: the single stream S maximizing
// w(S) = sum_u min(W_u, w_u(S)), assigned to every interested user.
// Returns a nil assignment if the instance has no streams.
func bestSingleStream(in *Instance) (*Assignment, float64) {
	best, bestVal := -1, -1.0
	for s := 0; s < in.NumStreams(); s++ {
		if v := in.StreamValue(s); v > bestVal {
			best, bestVal = s, v
		}
	}
	if best < 0 {
		return NewAssignment(in.NumUsers()), 0
	}
	a := NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		if in.Utility[u][best] > 0 {
			a.Add(u, best)
		}
	}
	return a, a.Value(in)
}

// splitCandidates derives the feasible candidates A1 and A2 from a
// greedy result (Theorem 2.8): for every oversaturated user,
// A1(u) = A(u) \ {last stream of u} and A2(u) = {last stream of u}.
// Users within their cap keep their full set in A1 (a strict improvement
// over splitting unconditionally that preserves the theorem: both
// candidates are feasible and their values still sum to at least w(A)).
func splitCandidates(in *Instance, res *Result) (a1, a2 *Assignment) {
	a1 = res.Semi.Clone()
	a2 = NewAssignment(res.Semi.NumUsers())
	for u, last := range res.LastAssigned {
		if last < 0 {
			continue
		}
		if res.Semi.UserSum(in, u) <= in.Caps[u]*(1+capTolerance)+capTolerance {
			continue // user is feasible as-is
		}
		a1.Remove(u, last)
		a2.Add(u, last)
	}
	return a1, a2
}

// pickBest returns the candidate with the largest value.
func pickBest(in *Instance, candidates ...*Assignment) (*Assignment, float64) {
	var best *Assignment
	bestVal := math.Inf(-1)
	for _, c := range candidates {
		if c == nil {
			continue
		}
		if v := c.Value(in); v > bestVal {
			best, bestVal = c, v
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestVal
}

// FixedGreedy runs Algorithm 1 and repairs its output into a feasible
// assignment by taking the best of A1, A2, and AMax (Theorem 2.8). The
// result is a 3e/(e-1) ≈ 4.746 approximation; SemiBestValue additionally
// carries the 2e/(e-1) semi-feasible guarantee of Lemma 2.6.
//
// The greedy phase runs through LazyGreedy (CELF lazy evaluation): it
// selects the identical stream sequence as the eager O(|S|²) scan —
// submodularity makes stale residuals valid upper bounds and the
// tie-breaking matches, see lazy.go — but only refreshes the heap top.
// TestFixedGreedyLazySelectionEquivalence enforces the equivalence on
// randomized instances.
func FixedGreedy(in *Instance) (*FixedResult, error) {
	res, err := LazyGreedy(in)
	if err != nil {
		return nil, err
	}
	a1, a2 := splitCandidates(in, res)
	amax, amaxVal := bestSingleStream(in)
	best, bestVal := pickBest(in, a1, a2, amax)
	return &FixedResult{
		Best:          best,
		BestValue:     bestVal,
		A1:            a1,
		A2:            a2,
		AMax:          amax,
		Greedy:        res,
		SemiBestValue: math.Max(res.SemiValue, amaxVal),
	}, nil
}

// PartialEnum implements the Section 2.3 algorithm (after Sviridenko):
// for every seed set of at most seedSize streams that fits in the budget,
// complete the assignment greedily and keep the best semi-feasible
// candidate; then repair it with the A1/A2/AMax split. seedSize = 3
// yields the e/(e-1) semi-feasible and 2e/(e-1) feasible guarantees at
// O(n^{seedSize}) times the cost of one greedy run.
func PartialEnum(in *Instance, seedSize int) (*FixedResult, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("smd: partial enumeration: %w", err)
	}
	if seedSize < 0 {
		return nil, fmt.Errorf("smd: partial enumeration: negative seed size %d", seedSize)
	}

	var bestRes *Result
	consider := func(res *Result) {
		if bestRes == nil || res.SemiValue > bestRes.SemiValue {
			bestRes = res
		}
	}
	consider(newGreedyEngine(in).run(nil))

	seed := make([]int, 0, seedSize)
	var enumerate func(next int, cost float64)
	enumerate = func(next int, cost float64) {
		if len(seed) > 0 {
			consider(newGreedyEngine(in).run(seed))
		}
		if len(seed) == seedSize {
			return
		}
		for s := next; s < in.NumStreams(); s++ {
			c := in.Costs[s]
			if cost+c > in.Budget+capTolerance {
				continue
			}
			seed = append(seed, s)
			enumerate(s+1, cost+c)
			seed = seed[:len(seed)-1]
		}
	}
	enumerate(0, 0)

	a1, a2 := splitCandidates(in, bestRes)
	amax, amaxVal := bestSingleStream(in)
	best, bestVal := pickBest(in, a1, a2, amax)
	return &FixedResult{
		Best:          best,
		BestValue:     bestVal,
		A1:            a1,
		A2:            a2,
		AMax:          amax,
		Greedy:        bestRes,
		SemiBestValue: math.Max(bestRes.SemiValue, amaxVal),
	}, nil
}
