package smd

import (
	"fmt"
	"math"
)

// Result is the output of Greedy: the raw, possibly semi-feasible
// assignment of Algorithm 1 together with the bookkeeping the fix-up and
// the analysis need.
type Result struct {
	// Semi is the greedy assignment. It is semi-feasible: every user's
	// cap is respected except possibly by its last assigned stream.
	Semi *Assignment
	// SemiValue is the capped valuation w(Semi).
	SemiValue float64
	// LastAssigned[u] is the last stream greedy gave to user u, or -1.
	// Removing it restores per-user feasibility (Theorem 2.8's split).
	LastAssigned []int
	// AugmentedValue is w(A_k) + residual(S_{k+1}) at the moment the
	// first stream was dropped for exceeding the budget — the quantity
	// Lemma 2.2 lower-bounds by (1-1/e)·OPT. If no stream was ever
	// dropped it equals SemiValue.
	AugmentedValue float64
	// Iterations counts streams considered (= |S| for a full run).
	Iterations int
	// Order lists the selected streams in selection order. Greedy and
	// LazyGreedy must produce identical sequences (same argmax rule,
	// same tie-breaks); the equivalence tests assert it.
	Order []int
}

// greedyEngine runs Algorithm 1 with incremental residual-utility
// maintenance, giving the O(|S|·n) total running time of Section 2.1.
type greedyEngine struct {
	in      *Instance
	support [][]int // support[u]: streams with w_u(S) > 0
	usersOf [][]int // usersOf[s]: users with w_u(S) > 0

	userSum []float64 // current uncapped sum w_u(A)
	rem     []float64 // residual cap max(0, W_u - userSum[u])
	resid   []float64 // fractional residual utility of each stream
	done    []bool    // stream assigned or dropped
	last    []int     // last stream assigned to each user

	assn      *Assignment
	order     []int
	cost      float64
	value     float64
	augmented float64
	blocked   bool
	iters     int
}

func newGreedyEngine(in *Instance) *greedyEngine {
	nS, nU := in.NumStreams(), in.NumUsers()
	e := &greedyEngine{
		in:      in,
		support: make([][]int, nU),
		usersOf: make([][]int, nS),
		userSum: make([]float64, nU),
		rem:     make([]float64, nU),
		resid:   make([]float64, nS),
		done:    make([]bool, nS),
		last:    make([]int, nU),
		assn:    NewAssignment(nU),
	}
	for u := 0; u < nU; u++ {
		e.rem[u] = in.Caps[u]
		e.last[u] = -1
		for s, w := range in.Utility[u] {
			if w > 0 {
				e.support[u] = append(e.support[u], s)
				e.usersOf[s] = append(e.usersOf[s], u)
			}
		}
	}
	for s := 0; s < nS; s++ {
		for _, u := range e.usersOf[s] {
			e.resid[s] += math.Min(in.Utility[u][s], e.rem[u])
		}
	}
	return e
}

// betterEffectiveness reports whether stream a has strictly larger cost
// effectiveness than stream b, using cross-multiplication so zero-cost
// streams (infinite effectiveness) need no special casing. Ties break
// toward larger residual, then smaller index, for determinism.
func (e *greedyEngine) betterEffectiveness(a, b int) bool {
	left := e.resid[a] * e.in.Costs[b]
	right := e.resid[b] * e.in.Costs[a]
	if left != right {
		return left > right
	}
	if e.resid[a] != e.resid[b] {
		return e.resid[a] > e.resid[b]
	}
	return a < b
}

// assign adds stream s to every unsaturated interested user and updates
// the residual utilities of the remaining streams incrementally.
func (e *greedyEngine) assign(s int) {
	e.done[s] = true
	e.order = append(e.order, s)
	e.cost += e.in.Costs[s]
	e.value += e.resid[s]
	e.resid[s] = 0
	for _, u := range e.usersOf[s] {
		if e.rem[u] <= 0 {
			continue // saturated: fractional residual utility is zero
		}
		w := e.in.Utility[u][s]
		oldRem := e.rem[u]
		e.userSum[u] += w
		e.rem[u] = math.Max(0, e.in.Caps[u]-e.userSum[u])
		e.assn.Add(u, s)
		e.last[u] = s
		// The user's residual cap shrank from oldRem to rem[u]; adjust
		// every not-yet-decided stream this user is interested in.
		for _, s2 := range e.support[u] {
			if e.done[s2] {
				continue
			}
			w2 := e.in.Utility[u][s2]
			e.resid[s2] += math.Min(w2, e.rem[u]) - math.Min(w2, oldRem)
		}
	}
}

// run executes Algorithm 1, optionally seeded with a set of streams that
// are assigned unconditionally first (used by PartialEnum). Seeds must
// jointly fit in the budget.
func (e *greedyEngine) run(seed []int) *Result {
	for _, s := range seed {
		if !e.done[s] {
			e.assign(s)
		}
	}
	nS := e.in.NumStreams()
	for {
		best := -1
		for s := 0; s < nS; s++ {
			if e.done[s] {
				continue
			}
			if best < 0 || e.betterEffectiveness(s, best) {
				best = s
			}
		}
		if best < 0 || e.resid[best] <= 0 {
			break // no remaining stream adds utility
		}
		e.iters++
		if e.cost+e.in.Costs[best] <= e.in.Budget+capTolerance {
			e.assign(best)
		} else {
			if !e.blocked {
				e.blocked = true
				e.augmented = e.value + e.resid[best]
			}
			e.done[best] = true // dropped: C <- C \ {S}
		}
	}
	if !e.blocked {
		e.augmented = e.value
	}
	return &Result{
		Semi:           e.assn,
		SemiValue:      e.value,
		LastAssigned:   e.last,
		AugmentedValue: e.augmented,
		Iterations:     e.iters,
		Order:          e.order,
	}
}

// Greedy runs Algorithm 1 on the instance. The returned assignment is
// semi-feasible; use FixedGreedy for a feasible solution with the
// Theorem 2.8 guarantee. The instance must pass Validate.
func Greedy(in *Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("smd: greedy: %w", err)
	}
	return newGreedyEngine(in).run(nil), nil
}
