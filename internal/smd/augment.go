package smd

import "math"

// AugmentedInstance returns the resource-augmentation instance of
// Corollary 2.7: each user's cap grows to W_u + kbar_u, where kbar_u =
// max_S w_u(S) is the largest single-stream load (with unit skew, load
// equals utility). Every semi-feasible assignment of the original
// instance is strictly feasible for the augmented one, which is how the
// paper states the (2e/(e-1)) and (e/(e-1)) augmented guarantees.
func (in *Instance) AugmentedInstance() *Instance {
	out := &Instance{
		StreamNames: append([]string(nil), in.StreamNames...),
		Costs:       append([]float64(nil), in.Costs...),
		Budget:      in.Budget,
		Utility:     make([][]float64, len(in.Utility)),
		Caps:        make([]float64, len(in.Caps)),
	}
	for u := range in.Utility {
		out.Utility[u] = append([]float64(nil), in.Utility[u]...)
		kbar := 0.0
		for _, w := range in.Utility[u] {
			if w > kbar {
				kbar = w
			}
		}
		if math.IsInf(in.Caps[u], 1) {
			out.Caps[u] = in.Caps[u]
		} else {
			out.Caps[u] = in.Caps[u] + kbar
		}
	}
	return out
}
