package smd

import (
	"math/rand"
	"testing"
)

func benchInstance(b *testing.B, streams, users int) *Instance {
	b.Helper()
	return randomSMDInstance(rand.New(rand.NewSource(42)), streams, users)
}

func BenchmarkGreedy(b *testing.B) {
	for _, size := range []struct{ s, u int }{{20, 8}, {100, 20}, {400, 50}} {
		in := benchInstance(b, size.s, size.u)
		b.Run(benchLabel(size.s, size.u), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Greedy(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFixedGreedy(b *testing.B) {
	in := benchInstance(b, 100, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FixedGreedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialEnumSeed2(b *testing.B) {
	in := benchInstance(b, 16, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PartialEnum(in, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetValue(b *testing.B) {
	in := benchInstance(b, 200, 40)
	set := make([]int, 0, 100)
	for s := 0; s < 200; s += 2 {
		set = append(set, s)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = in.SetValue(set)
	}
}

func benchLabel(s, u int) string {
	digits := func(x int) string {
		if x == 0 {
			return "0"
		}
		var buf [8]byte
		i := len(buf)
		for x > 0 {
			i--
			buf[i] = byte('0' + x%10)
			x /= 10
		}
		return string(buf[i:])
	}
	return "s" + digits(s) + "u" + digits(u)
}
