package smd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLemma21Submodularity checks the four properties of Lemma 2.1 on
// the set-function w(T) = sum_u min(W_u, sum_{S in T} w_u(S)):
// nonnegative, nondecreasing, and submodular.
func TestLemma21Submodularity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 8, 3)

		// Two random stream sets T and T'.
		var setT, setU []int
		for s := 0; s < in.NumStreams(); s++ {
			if r.Float64() < 0.5 {
				setT = append(setT, s)
			}
			if r.Float64() < 0.5 {
				setU = append(setU, s)
			}
		}
		union, inter := unionInter(setT, setU, in.NumStreams())

		wT, wU := in.SetValue(setT), in.SetValue(setU)
		wUnion, wInter := in.SetValue(union), in.SetValue(inter)

		const tol = 1e-9
		if wT < -tol || wU < -tol {
			return false // nonnegative
		}
		if wUnion+tol < wT || wUnion+tol < wU {
			return false // nondecreasing (T, T' subseteq T u T')
		}
		return wT+wU+tol >= wUnion+wInter // submodular
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func unionInter(a, b []int, n int) (union, inter []int) {
	inA := make([]bool, n)
	inB := make([]bool, n)
	for _, s := range a {
		inA[s] = true
	}
	for _, s := range b {
		inB[s] = true
	}
	for s := 0; s < n; s++ {
		if inA[s] || inB[s] {
			union = append(union, s)
		}
		if inA[s] && inB[s] {
			inter = append(inter, s)
		}
	}
	return union, inter
}

// TestSetValueMatchesSemiAssignment confirms that SetValue(T) equals the
// value of the semi-feasible assignment that gives every stream of T to
// every interested user.
func TestSetValueMatchesSemiAssignment(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 7, 3)
		var set []int
		for s := 0; s < in.NumStreams(); s++ {
			if r.Float64() < 0.5 {
				set = append(set, s)
			}
		}
		a := NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for _, s := range set {
				if in.Utility[u][s] > 0 {
					a.Add(u, s)
				}
			}
		}
		diff := in.SetValue(set) - a.Value(in)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStreamValueConsistency: StreamValue(s) = SetValue({s}).
func TestStreamValueConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	in := randomSMDInstance(r, 10, 4)
	for s := 0; s < in.NumStreams(); s++ {
		if got, want := in.StreamValue(s), in.SetValue([]int{s}); got != want {
			t.Fatalf("StreamValue(%d) = %v, SetValue = %v", s, got, want)
		}
	}
}

// TestGreedyMonotoneInBudget: growing the budget never hurts greedy's
// augmented value (sanity property of the implementation, not a theorem
// about SemiValue itself, which can fluctuate).
func TestGreedyValueNonnegative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(14))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 8, 3)
		res, err := Greedy(in)
		if err != nil {
			return false
		}
		return res.SemiValue >= 0 && res.AugmentedValue >= res.SemiValue-1e-9
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
