// Package loaddrive submits wire-form workloads to a remote fleet over
// the three ingestion paths — one persistent /v1/stream connection,
// :batch posts, or one POST per event. It is shared by the mmdserve
// -stream load client and the StreamIngest benchmarks so that the
// protocol the benchmark measures is, line for line, the one the CLI
// drives (one copy of the interleaving, the chunking, and the error
// handling). All three paths preserve per-tenant submission order, so
// a fixed workload lands a fleet in the identical final state
// whichever one carries it.
package loaddrive

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/streamclient"
)

// Interleave merges per-tenant schedules round-robin — the same
// shard-mixing order cluster.RunWorkload submits in.
func Interleave(seqs [][]streamclient.Event) []streamclient.Event {
	var all []streamclient.Event
	for i := 0; ; i++ {
		any := false
		for ti := range seqs {
			if i < len(seqs[ti]) {
				all = append(all, seqs[ti][i])
				any = true
			}
		}
		if !any {
			return all
		}
	}
}

// Stream pipes the whole schedule through one persistent /v1/stream
// connection: a sender goroutine pipelines the lines, the caller
// drains the results (raw — counted and error-sniffed, not decoded).
// It returns the number of clean results received.
func Stream(target string, events []streamclient.Event) (int, error) {
	conn, err := streamclient.Dial(target)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	sendErr := make(chan error, 1)
	go func() {
		for i := range events {
			if err := conn.Send(events[i]); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- conn.CloseSend()
	}()
	got := 0
	for {
		line, err := conn.RecvRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			return got, err
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			return got, fmt.Errorf("stream error: %s", line)
		}
		got++
	}
	if err := <-sendErr; err != nil {
		return got, err
	}
	if got != len(events) {
		return got, fmt.Errorf("stream returned %d results for %d events", got, len(events))
	}
	return got, nil
}

// Batch submits each tenant's schedule as :batch posts of batchSize
// events, round-robin across tenants so shard queues see the same
// tenant mix as the streamed run.
func Batch(target string, seqs [][]streamclient.Event, batchSize int) (int, error) {
	if batchSize < 1 {
		batchSize = 16
	}
	total := 0
	for chunk := 0; ; chunk++ {
		any := false
		for ti := range seqs {
			lo := chunk * batchSize
			if lo >= len(seqs[ti]) {
				continue
			}
			any = true
			hi := min(lo+batchSize, len(seqs[ti]))
			body, err := json.Marshal(seqs[ti][lo:hi])
			if err != nil {
				return total, err
			}
			if err := postOK(fmt.Sprintf("%s/v1/tenants/%d/events:batch", target, ti), body); err != nil {
				return total, err
			}
			total += hi - lo
		}
		if !any {
			return total, nil
		}
	}
}

// Single submits one POST per event.
func Single(target string, events []streamclient.Event) (int, error) {
	for i := range events {
		body, err := json.Marshal(events[i])
		if err != nil {
			return i, err
		}
		if err := postOK(fmt.Sprintf("%s/v1/tenants/%d/events", target, events[i].Tenant), body); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

// postOK posts a JSON body, fails on any non-200, and drains the
// response so the transport reuses the connection.
func postOK(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return fmt.Errorf("%s: server status %s: %s", url, resp.Status, msg)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}
