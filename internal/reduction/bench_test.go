package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/mmd"
)

func benchSetup(b *testing.B) (*mmd.Instance, *View, *mmd.Assignment) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	in := randomMMD(9, 60, 15, 3, 2)
	view, err := ToSMD(in)
	if err != nil {
		b.Fatal(err)
	}
	a := mmd.NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			if rng.Float64() < 0.5 {
				a.Add(u, s)
				if a.CheckFeasible(view.SMD) != nil {
					a.Remove(u, s)
				}
			}
		}
	}
	return in, view, a
}

func BenchmarkToSMD(b *testing.B) {
	in := randomMMD(10, 60, 15, 3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ToSMD(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiftPaper(b *testing.B) {
	_, view, a := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Lift(view, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiftGreedy(b *testing.B) {
	_, view, a := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LiftGreedy(view, a); err != nil {
			b.Fatal(err)
		}
	}
}
