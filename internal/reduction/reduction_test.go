package reduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
)

func randomMMD(seed int64, streams, users, m, mc int) *mmd.Instance {
	in, err := generator.RandomMMD{
		Streams: streams, Users: users, M: m, MC: mc, Seed: seed, Skew: 4,
	}.Generate()
	if err != nil {
		panic(err)
	}
	return in
}

func TestToSMDShape(t *testing.T) {
	in := randomMMD(1, 8, 4, 3, 2)
	view, err := ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	if !view.SMD.IsSMD() {
		t.Fatal("reduced instance is not SMD")
	}
	if got := view.SMD.Budgets[0]; got != 3 {
		t.Fatalf("reduced budget = %v, want m = 3", got)
	}
	for u := range view.SMD.Users {
		if got := view.SMD.Users[u].Capacities[0]; got != 2 {
			t.Fatalf("user %d reduced capacity = %v, want mc = 2", u, got)
		}
	}
	// Reduced cost of each stream is sum_i c_i/B_i.
	for s := range in.Streams {
		want := 0.0
		for i, c := range in.Streams[s].Costs {
			want += c / in.Budgets[i]
		}
		if got := view.SMD.Streams[s].Costs[0]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("stream %d reduced cost = %v, want %v", s, got, want)
		}
	}
}

func TestToSMDSkipsInfiniteMeasures(t *testing.T) {
	in := randomMMD(2, 6, 3, 2, 1)
	in.Budgets[1] = math.Inf(1)
	view, err := ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := view.SMD.Budgets[0]; got != 1 {
		t.Fatalf("reduced budget = %v, want 1 (one finite measure)", got)
	}
	if len(view.FiniteBudgets) != 1 || view.FiniteBudgets[0] != 0 {
		t.Fatalf("FiniteBudgets = %v, want [0]", view.FiniteBudgets)
	}
}

func TestToSMDNoFiniteBudget(t *testing.T) {
	in := randomMMD(3, 4, 2, 1, 1)
	in.Budgets[0] = math.Inf(1)
	if _, err := ToSMD(in); err == nil {
		t.Fatal("ToSMD accepted an instance with no finite budget")
	}
}

// TestLemma42FeasibleMapsFeasible: a feasible assignment for the
// original instance is feasible for the reduced one (the key claim in
// Lemma 4.2's proof).
func TestLemma42FeasibleMapsFeasible(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomMMD(seed, 6, 3, 2, 2)
		view, err := ToSMD(in)
		if err != nil {
			return false
		}
		// Build a random feasible assignment by greedy random packing.
		a := mmd.NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if r.Float64() < 0.5 {
					a.Add(u, s)
					if a.CheckFeasible(in) != nil {
						a.Remove(u, s)
					}
				}
			}
		}
		if a.CheckFeasible(in) != nil {
			return false
		}
		return a.CheckFeasible(view.SMD) == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLemma42Blowup: an assignment feasible for the reduced instance
// exceeds original budgets by at most factor m and capacities by at most
// factor mc.
func TestLemma42Blowup(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(32))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomMMD(seed, 6, 3, 3, 2)
		view, err := ToSMD(in)
		if err != nil {
			return false
		}
		a := mmd.NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if r.Float64() < 0.5 {
					a.Add(u, s)
					if a.CheckFeasible(view.SMD) != nil {
						a.Remove(u, s)
					}
				}
			}
		}
		m, mc := 3.0, 2.0
		for i := range in.Budgets {
			if a.ServerCost(in, i) > m*in.Budgets[i]+1e-9 {
				return false
			}
		}
		for u := range in.Users {
			for j := range in.Users[u].Capacities {
				if a.UserLoad(in, u, j) > mc*in.Users[u].Capacities[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetsProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(33))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		weights := make([]float64, n)
		items := make([]int, n)
		total := 0.0
		for i := range weights {
			weights[i] = r.Float64() * 0.99
			items[i] = i
			total += weights[i]
		}
		sets := intervalSets(items, func(i int) float64 { return weights[i] })

		// Every item appears exactly once.
		seen := make(map[int]int)
		for _, set := range sets {
			sum := 0.0
			for _, it := range set {
				seen[it]++
				sum += weights[it]
			}
			if sum > 1+1e-9 {
				return false // every set fits a unit budget
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// At most 2*ceil(total)-1 sets (the paper's 2m-1 with W = m).
		limit := 2*int(math.Ceil(total+1e-9)) - 1
		if limit < 1 {
			limit = 1
		}
		return len(sets) <= limit
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetsEmpty(t *testing.T) {
	if sets := intervalSets(nil, func(int) float64 { return 0 }); len(sets) != 0 {
		t.Fatalf("intervalSets(nil) = %v, want empty", sets)
	}
}

func TestLiftFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 30; trial++ {
		in := randomMMD(rng.Int63(), 8, 4, 3, 2)
		view, err := ToSMD(in)
		if err != nil {
			t.Fatal(err)
		}
		// Any assignment feasible for the reduced instance must lift to
		// a feasible assignment for the original.
		a := mmd.NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if rng.Float64() < 0.6 {
					a.Add(u, s)
					if a.CheckFeasible(view.SMD) != nil {
						a.Remove(u, s)
					}
				}
			}
		}
		lifted, rep, err := Lift(view, a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lifted.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: lifted infeasible: %v", trial, err)
		}
		if rep.Value != lifted.Utility(in) {
			t.Fatalf("trial %d: report value %v != utility %v", trial, rep.Value, lifted.Utility(in))
		}
		// Theorem 4.3 loss bound: value >= SMD value / ((2m-1)(2mc-1)).
		m, mc := 3.0, 2.0
		if rep.Value < rep.SMDValue/((2*m-1)*(2*mc-1))-1e-9 {
			t.Fatalf("trial %d: lift lost more than (2m-1)(2mc-1): %v -> %v",
				trial, rep.SMDValue, rep.Value)
		}
	}
}

func TestLiftEmptyAssignment(t *testing.T) {
	in := randomMMD(35, 5, 2, 2, 1)
	view, err := ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	lifted, rep, err := Lift(view, mmd.NewAssignment(in.NumUsers()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != 0 || lifted.Pairs() != 0 {
		t.Fatalf("lifting empty assignment gave value %v, pairs %d", rep.Value, lifted.Pairs())
	}
}

func TestTightnessInstanceShape(t *testing.T) {
	in, err := TightnessInstance(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("tightness instance invalid: %v", err)
	}
	if got := in.NumStreams(); got != 4 {
		t.Fatalf("NumStreams = %d, want m+mc-1 = 4", got)
	}
	if got := in.M(); got != 3 {
		t.Fatalf("M = %d, want 3", got)
	}
	if got := in.MC(); got != 2 {
		t.Fatalf("MC = %d, want 2", got)
	}
	opt := TightnessOptimal(in)
	if err := opt.CheckFeasible(in); err != nil {
		t.Fatalf("optimal assignment infeasible: %v", err)
	}
	if got := opt.Utility(in); math.Abs(got-3) > 1e-12 {
		t.Fatalf("optimal value = %v, want m = 3", got)
	}
}

func TestTightnessRejectsBadArgs(t *testing.T) {
	if _, err := TightnessInstance(0, 1); err == nil {
		t.Fatal("TightnessInstance(0,1) should fail")
	}
	if _, err := TightnessInstance(1, 0); err == nil {
		t.Fatal("TightnessInstance(1,0) should fail")
	}
}

// TestTightnessLossIsMMc reproduces Section 4.2: lifting the optimal
// reduced-instance assignment of the tightness family loses a factor of
// about m*mc.
func TestTightnessLossIsMMc(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 2}, {4, 3}} {
		m, mc := dims[0], dims[1]
		in, err := TightnessInstance(m, mc)
		if err != nil {
			t.Fatal(err)
		}
		view, err := ToSMD(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := TightnessOptimal(in)
		if err := opt.CheckFeasible(view.SMD); err != nil {
			t.Fatalf("m=%d mc=%d: optimal not feasible for reduced instance: %v", m, mc, err)
		}
		lifted, rep, err := Lift(view, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := lifted.CheckFeasible(in); err != nil {
			t.Fatalf("lifted infeasible: %v", err)
		}
		optVal := float64(m)
		ratio := optVal / rep.Value
		// The adversarial ordering drives the loss to essentially m*mc.
		want := float64(m * mc)
		if math.Abs(ratio-want) > 0.5 {
			t.Fatalf("m=%d mc=%d: measured loss %v, want ~%v (lifted value %v)",
				m, mc, ratio, want, rep.Value)
		}
	}
}

// TestExactOnTightness confirms the exact solver agrees that OPT = m.
func TestExactOnTightness(t *testing.T) {
	in, err := TightnessInstance(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-3) > 1e-9 {
		t.Fatalf("exact OPT = %v, want 3", res.Value)
	}
}
