package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/mmd"
)

// randomReducedAssignment builds a random assignment feasible for the
// reduced instance.
func randomReducedAssignment(rng *rand.Rand, in *mmd.Instance, view *View) *mmd.Assignment {
	a := mmd.NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			if rng.Float64() < 0.6 {
				a.Add(u, s)
				if a.CheckFeasible(view.SMD) != nil {
					a.Remove(u, s)
				}
			}
		}
	}
	return a
}

// TestLiftGreedyDominatesLift: the merging lift is feasible and never
// worse than the paper-faithful lift.
func TestLiftGreedyDominatesLift(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 40; trial++ {
		in := randomMMD(rng.Int63(), 9, 4, 3, 2)
		view, err := ToSMD(in)
		if err != nil {
			t.Fatal(err)
		}
		a := randomReducedAssignment(rng, in, view)

		paper, paperRep, err := Lift(view, a)
		if err != nil {
			t.Fatal(err)
		}
		merged, mergedRep, err := LiftGreedy(view, a)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: merged lift infeasible: %v", trial, err)
		}
		if mergedRep.Value < paperRep.Value-1e-9 {
			t.Fatalf("trial %d: merged lift %v < paper lift %v",
				trial, mergedRep.Value, paperRep.Value)
		}
		_ = paper
	}
}

// TestLiftGreedyRecoversFeasibleSolutions: when the reduced-instance
// assignment happens to be feasible for the original, the merging lift
// keeps all of it.
func TestLiftGreedyRecoversFeasibleSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	recovered := 0
	for trial := 0; trial < 40; trial++ {
		in := randomMMD(rng.Int63(), 8, 3, 2, 1)
		view, err := ToSMD(in)
		if err != nil {
			t.Fatal(err)
		}
		// Build an assignment feasible for the ORIGINAL instance.
		a := mmd.NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if rng.Float64() < 0.5 {
					a.Add(u, s)
					if a.CheckFeasible(in) != nil {
						a.Remove(u, s)
					}
				}
			}
		}
		merged, rep, err := LiftGreedy(view, a)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Value >= a.Utility(in)-1e-9 {
			recovered++
		}
		_ = merged
	}
	// The merge is greedy over candidate sets, so full recovery is not
	// guaranteed in theory — but on random instances it should happen
	// most of the time (this is the whole point of the improvement).
	if recovered < 25 {
		t.Fatalf("merging lift recovered only %d/40 already-feasible assignments", recovered)
	}
}

// TestLiftGreedyOnTightness: the merging lift defeats the Section 4.2
// adversarial family (recovering close to OPT), which is exactly why
// the ablation keeps the paper-faithful Lift around for E5.
func TestLiftGreedyOnTightness(t *testing.T) {
	in, err := TightnessInstance(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	opt := TightnessOptimal(in)
	merged, rep, err := LiftGreedy(view, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	// Paper lift retains ~1/mc = 0.5; the merge should retain >= 2.
	if rep.Value < 2 {
		t.Fatalf("merging lift value %v, want >= 2 on tightness family", rep.Value)
	}
}

func TestLiftGreedyEmpty(t *testing.T) {
	in := randomMMD(38, 5, 2, 2, 1)
	view, err := ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	merged, rep, err := LiftGreedy(view, mmd.NewAssignment(in.NumUsers()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != 0 || merged.Pairs() != 0 {
		t.Fatalf("empty lift gave value %v", rep.Value)
	}
}
