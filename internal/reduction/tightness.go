package reduction

import (
	"fmt"

	"repro/internal/mmd"
)

// TightnessInstance builds the Section 4.2 family: an MMD instance with m
// server budgets and one user with mc capacity constraints on which the
// Theorem 4.3 output transformation can lose a factor of m*mc.
//
// The instance has m+mc-1 streams. Streams S_1..S_{m-1} each consume
// (1/2+eps) of a distinct server budget and have utility 1; streams
// S_m..S_{m+mc-1} each consume (1/2+eps)/mc of server budget m and
// (1/2+eps') of a distinct user capacity, with utility 1/mc. The optimal
// solution takes everything (OPT = m), but the interval decomposition can
// retain only a single small stream (value 1/mc).
//
// Streams are ordered small-first so that the deterministic
// decomposition in Lift reproduces the adversarial choice described in
// the paper.
func TightnessInstance(m, mc int) (*mmd.Instance, error) {
	if m < 1 || mc < 1 {
		return nil, fmt.Errorf("reduction: tightness instance needs m, mc >= 1; got m=%d, mc=%d", m, mc)
	}
	eps := 1.0 / float64(m*m+4)
	epsPrime := 1.0 / float64(mc*mc+4)

	nBig := m - 1
	nSmall := mc
	nS := nBig + nSmall

	in := &mmd.Instance{
		Streams: make([]mmd.Stream, nS),
		Users:   make([]mmd.User, 1),
		Budgets: make([]float64, m),
	}
	for i := range in.Budgets {
		in.Budgets[i] = 1
	}

	// Small streams first (indices 0..mc-1): cost (1/2+eps)/mc on server
	// measure m-1, load (1/2+eps') on user measure i, utility 1/mc.
	for i := 0; i < nSmall; i++ {
		costs := make([]float64, m)
		costs[m-1] = (0.5 + eps) / float64(mc)
		in.Streams[i] = mmd.Stream{Name: fmt.Sprintf("small-%d", i+1), Costs: costs}
	}
	// Big streams (indices mc..mc+m-2): cost (1/2+eps) on a distinct
	// server measure, no user load, utility 1.
	for j := 0; j < nBig; j++ {
		costs := make([]float64, m)
		costs[j] = 0.5 + eps
		in.Streams[nSmall+j] = mmd.Stream{Name: fmt.Sprintf("big-%d", j+1), Costs: costs}
	}

	u := mmd.User{
		Name:       "gateway",
		Utility:    make([]float64, nS),
		Loads:      make([][]float64, mc),
		Capacities: make([]float64, mc),
	}
	for j := range u.Loads {
		u.Loads[j] = make([]float64, nS)
		u.Capacities[j] = 1
		u.Loads[j][j] = 0.5 + epsPrime // small stream j loads measure j
	}
	for i := 0; i < nSmall; i++ {
		u.Utility[i] = 1 / float64(mc)
	}
	for j := 0; j < nBig; j++ {
		u.Utility[nSmall+j] = 1
	}
	in.Users[0] = u
	return in, nil
}

// TightnessOptimal returns the optimal assignment for a tightness
// instance: every stream to the single user. Its value is m.
func TightnessOptimal(in *mmd.Instance) *mmd.Assignment {
	a := mmd.NewAssignment(in.NumUsers())
	for s := 0; s < in.NumStreams(); s++ {
		a.Add(0, s)
	}
	return a
}
