package reduction

import (
	"math"
	"testing"
)

// FuzzIntervalSets drives the Fig. 3 decomposition with arbitrary
// weights (clamped into [0, 1)) and asserts its invariants: exact
// partition, per-set weight at most 1, and the 2W-1 set-count bound.
func FuzzIntervalSets(f *testing.F) {
	f.Add(uint16(3), uint64(12345))
	f.Add(uint16(1), uint64(0))
	f.Add(uint16(12), uint64(999))

	f.Fuzz(func(t *testing.T, n uint16, bits uint64) {
		count := int(n%24) + 1
		weights := make([]float64, count)
		items := make([]int, count)
		total := 0.0
		state := bits
		for i := range weights {
			// xorshift-ish deterministic weights in [0, 0.999].
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			weights[i] = float64(state%1000) / 1001.0
			items[i] = i
			total += weights[i]
		}
		sets := intervalSets(items, func(i int) float64 { return weights[i] })

		seen := make(map[int]int)
		for _, set := range sets {
			sum := 0.0
			for _, it := range set {
				seen[it]++
				sum += weights[it]
			}
			if sum > 1+1e-9 {
				t.Fatalf("set weight %v exceeds 1", sum)
			}
		}
		if len(seen) != count {
			t.Fatalf("partition lost items: %d of %d", len(seen), count)
		}
		for it, c := range seen {
			if c != 1 {
				t.Fatalf("item %d appears %d times", it, c)
			}
		}
		limit := 2*int(math.Ceil(total+1e-9)) - 1
		if limit < 1 {
			limit = 1
		}
		if len(sets) > limit {
			t.Fatalf("%d sets exceed the 2W-1 bound %d (total %v)", len(sets), limit, total)
		}
	})
}
