package reduction

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mmd"
)

// LiftGreedy is an implementation-improved output transformation: like
// Lift it decomposes the SMD solution into candidate sets that are
// individually feasible, but instead of keeping a single set it merges
// sets greedily (largest utility first) while the ORIGINAL budgets and
// capacities still hold. Its value is never below Lift's — the best
// single set is always admitted first — so the Theorem 4.3 guarantee is
// preserved, and on non-adversarial workloads it typically recovers most
// of the paper-faithful transformation's m*mc loss (measured by the
// lift-merge ablation benchmark).
func LiftGreedy(v *View, a *mmd.Assignment) (*mmd.Assignment, *Report, error) {
	smdCost := func(s int) float64 { return v.SMD.Streams[s].Costs[0] }
	report := &Report{SMDValue: a.Utility(v.Orig)}

	var s1, s2 []int
	for _, s := range a.Range() {
		if smdCost(s) >= 1-intervalTolerance {
			s1 = append(s1, s)
		} else {
			s2 = append(s2, s)
		}
	}
	candidates := make([][]int, 0, len(s1)+2*len(s2))
	candidates = append(candidates, intervalSets(s2, smdCost)...)
	for _, s := range s1 {
		candidates = append(candidates, []int{s})
	}
	report.ServerCandidates = len(candidates)
	if len(candidates) == 0 {
		return mmd.NewAssignment(v.Orig.NumUsers()), report, nil
	}

	// Server side: admit candidate sets in decreasing utility order
	// while every original server budget holds.
	type scored struct {
		set  []int
		util float64
	}
	scoredSets := make([]scored, 0, len(candidates))
	for _, set := range candidates {
		util := 0.0
		for _, s := range set {
			for u := 0; u < v.Orig.NumUsers(); u++ {
				if a.Has(u, s) {
					util += v.Orig.Users[u].Utility[s]
				}
			}
		}
		scoredSets = append(scoredSets, scored{set: set, util: util})
	}
	sort.SliceStable(scoredSets, func(i, j int) bool {
		return scoredSets[i].util > scoredSets[j].util
	})

	budgetLeft := append([]float64(nil), v.Orig.Budgets...)
	chosen := mmd.NewAssignment(v.Orig.NumUsers())
	for _, cand := range scoredSets {
		// Charge the whole set, then copy its pairs.
		setCost := make([]float64, len(budgetLeft))
		for _, s := range cand.set {
			for i, c := range v.Orig.Streams[s].Costs {
				setCost[i] += c
			}
		}
		ok := true
		for i := range budgetLeft {
			if setCost[i] > budgetLeft[i]+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := range budgetLeft {
			budgetLeft[i] -= setCost[i]
		}
		for _, s := range cand.set {
			for u := 0; u < v.Orig.NumUsers(); u++ {
				if a.Has(u, s) {
					chosen.Add(u, s)
				}
			}
		}
	}
	report.ChosenValue = chosen.Utility(v.Orig)

	// User side: per user, decompose into individually feasible sets and
	// merge them in utility order while the true capacities hold.
	for u := 0; u < v.Orig.NumUsers(); u++ {
		usr := &v.Orig.Users[u]
		streams := chosen.UserStreams(u)
		if len(streams) == 0 || len(usr.Capacities) == 0 {
			continue
		}
		var sets [][]int
		if len(v.SMD.Users[u].Loads) == 0 {
			sets = [][]int{streams}
		} else {
			load := v.SMD.Users[u].Loads[0]
			var big, small []int
			for _, s := range streams {
				if load[s] >= 1-intervalTolerance {
					big = append(big, s)
				} else {
					small = append(small, s)
				}
			}
			sets = intervalSets(small, func(s int) float64 { return load[s] })
			for _, s := range big {
				sets = append(sets, []int{s})
			}
		}
		sort.SliceStable(sets, func(i, j int) bool {
			return setUtility(usr, sets[i]) > setUtility(usr, sets[j])
		})
		capLeft := append([]float64(nil), usr.Capacities...)
		keep := make(map[int]struct{}, len(streams))
		for _, set := range sets {
			setLoad := make([]float64, len(capLeft))
			for _, s := range set {
				for j := range capLeft {
					setLoad[j] += usr.Loads[j][s]
				}
			}
			fits := true
			for j := range capLeft {
				if !math.IsInf(capLeft[j], 1) && setLoad[j] > capLeft[j]+1e-12 {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			for j := range capLeft {
				capLeft[j] -= setLoad[j]
			}
			for _, s := range set {
				keep[s] = struct{}{}
			}
		}
		for _, s := range streams {
			if _, ok := keep[s]; !ok {
				chosen.Remove(u, s)
			}
		}
	}

	if err := chosen.CheckFeasible(v.Orig); err != nil {
		return nil, nil, fmt.Errorf("reduction: greedily lifted assignment infeasible: %w", err)
	}
	report.Value = chosen.Utility(v.Orig)
	return chosen, report, nil
}

func setUtility(usr *mmd.User, set []int) float64 {
	total := 0.0
	for _, s := range set {
		total += usr.Utility[s]
	}
	return total
}
