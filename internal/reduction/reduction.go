// Package reduction implements Section 4 of Patt-Shamir & Rawitz: the
// reduction from the Multi-Budget Multi-Client Distribution problem to
// the single-budget problem.
//
// The input transformation (ToSMD) normalizes every server cost by its
// budget and sums them into one cost with budget m, and does the same per
// user with capacities (budget m_c). The output transformation (Lift)
// turns a feasible SMD solution — which may exceed each original budget
// by a factor of up to m and each capacity by up to m_c (Lemma 4.2) —
// back into a feasible MMD assignment via interval decomposition
// (Fig. 3), losing at most a (2m-1)(2m_c-1) factor (Theorem 4.3).
// TightnessInstance generates the Section 4.2 family on which this loss
// is essentially attained.
package reduction

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mmd"
)

// ErrNoFiniteBudget is returned when the instance has no finite server
// budget; the reduction (and the problem) is trivial in that case.
var ErrNoFiniteBudget = errors.New("reduction: no finite server budget")

// View ties a reduced single-budget instance to its multi-budget origin.
type View struct {
	// Orig is the original multi-budget instance (not copied; callers
	// must not mutate it while the view is alive).
	Orig *mmd.Instance
	// SMD is the reduced instance: one server budget equal to the number
	// of finite measures, and at most one capacity measure per user.
	SMD *mmd.Instance
	// FiniteBudgets lists the original measures with finite budgets.
	FiniteBudgets []int
	// FiniteCaps[u] lists user u's capacity measures with finite caps.
	FiniteCaps [][]int
}

// ToSMD applies the Section 4.1 input transformation:
//
//	c(S)   = sum_i c_i(S)/B_i     with budget B = m
//	k^u(S) = sum_j k^u_j(S)/K^u_j with capacity K^u = m_c(u)
//
// over the finite measures only (an infinite budget never constrains and
// contributes zero normalized cost). Users whose finite capacity count is
// zero receive no capacity measure in the reduced instance.
func ToSMD(in *mmd.Instance) (*View, error) {
	finite := make([]int, 0, len(in.Budgets))
	for i, b := range in.Budgets {
		if !math.IsInf(b, 1) {
			finite = append(finite, i)
		}
	}
	if len(finite) == 0 {
		return nil, ErrNoFiniteBudget
	}
	m := len(finite)

	out := &mmd.Instance{
		Streams: make([]mmd.Stream, in.NumStreams()),
		Users:   make([]mmd.User, in.NumUsers()),
		Budgets: []float64{float64(m)},
	}
	for s := range in.Streams {
		c := 0.0
		for _, i := range finite {
			c += in.Streams[s].Costs[i] / in.Budgets[i]
		}
		out.Streams[s] = mmd.Stream{Name: in.Streams[s].Name, Costs: []float64{c}}
	}

	fcaps := make([][]int, in.NumUsers())
	for u := range in.Users {
		usr := &in.Users[u]
		var fin []int
		for j, k := range usr.Capacities {
			if !math.IsInf(k, 1) {
				fin = append(fin, j)
			}
		}
		fcaps[u] = fin
		nu := mmd.User{
			Name:    usr.Name,
			Utility: append([]float64(nil), usr.Utility...),
		}
		if len(fin) > 0 {
			row := make([]float64, in.NumStreams())
			for _, j := range fin {
				capJ := usr.Capacities[j]
				for s, k := range usr.Loads[j] {
					row[s] += k / capJ
				}
			}
			nu.Loads = [][]float64{row}
			nu.Capacities = []float64{float64(len(fin))}
		}
		out.Users[u] = nu
	}
	return &View{Orig: in, SMD: out, FiniteBudgets: finite, FiniteCaps: fcaps}, nil
}

// intervalTolerance guards the boundary tests of the interval
// decomposition against floating-point drift.
const intervalTolerance = 1e-12

// intervalSets implements the Fig. 3 decomposition: items (with weights
// < 1, in the given order) are laid on the real line; every item whose
// interval strictly contains an integer point becomes a singleton set,
// and maximal runs between integer points form the remaining sets. Every
// returned set has total weight at most 1, and when sum(weights) <= W
// there are at most 2W-1 sets.
func intervalSets(items []int, weight func(int) float64) [][]int {
	var sets [][]int
	var white []int
	flush := func() {
		if len(white) > 0 {
			sets = append(sets, white)
			white = nil
		}
	}
	cum := 0.0
	for _, it := range items {
		w := weight(it)
		start, end := cum, cum+w
		boundary := math.Floor(start) + 1
		if end > boundary+intervalTolerance {
			// The item strictly spans the integer point: singleton.
			flush()
			sets = append(sets, []int{it})
		} else {
			white = append(white, it)
			if end >= boundary-intervalTolerance {
				// The item ends exactly on the boundary; the unit
				// interval is complete.
				flush()
			}
		}
		cum = end
	}
	flush()
	return sets
}

// Report describes a Lift run, for experiments that measure where the
// O(m*m_c) factor is lost.
type Report struct {
	// ServerCandidates is the number of server-side candidate sets
	// (singletons from S1 plus interval sets from S2); at most 2m-1 when
	// the SMD solution is feasible.
	ServerCandidates int
	// ChosenValue is the utility of the chosen server-side candidate
	// before per-user repair.
	ChosenValue float64
	// Value is the utility after per-user repair (the final value).
	Value float64
	// SMDValue is the utility of the SMD assignment being lifted.
	SMDValue float64
}

// Lift applies the Theorem 4.3 output transformation to an assignment
// that is feasible for the reduced instance, producing an assignment that
// is feasible for the original multi-budget instance.
func Lift(v *View, a *mmd.Assignment) (*mmd.Assignment, *Report, error) {
	smdCost := func(s int) float64 { return v.SMD.Streams[s].Costs[0] }
	report := &Report{SMDValue: a.Utility(v.Orig)}

	// Server side: singletons for streams with c(S) >= 1, interval
	// decomposition for the rest.
	var s1, s2 []int
	for _, s := range a.Range() {
		if smdCost(s) >= 1-intervalTolerance {
			s1 = append(s1, s)
		} else {
			s2 = append(s2, s)
		}
	}
	candidates := make([][]int, 0, len(s1)+2*len(s2))
	candidates = append(candidates, intervalSets(s2, smdCost)...)
	for _, s := range s1 {
		candidates = append(candidates, []int{s})
	}
	report.ServerCandidates = len(candidates)

	if len(candidates) == 0 {
		return mmd.NewAssignment(v.Orig.NumUsers()), report, nil
	}

	var chosen *mmd.Assignment
	bestVal := math.Inf(-1)
	for _, set := range candidates {
		allowed := make(map[int]struct{}, len(set))
		for _, s := range set {
			allowed[s] = struct{}{}
		}
		cand := a.Clone().RestrictToStreams(allowed)
		if val := cand.Utility(v.Orig); val > bestVal {
			chosen, bestVal = cand, val
		}
	}
	report.ChosenValue = bestVal

	// User side: repeat the decomposition per user on the normalized
	// load, keeping the best-utility subset.
	for u := 0; u < v.Orig.NumUsers(); u++ {
		if len(v.SMD.Users[u].Loads) == 0 {
			continue // user has no finite capacity: nothing to repair
		}
		load := v.SMD.Users[u].Loads[0]
		streams := chosen.UserStreams(u)
		var big, small []int
		for _, s := range streams {
			if load[s] >= 1-intervalTolerance {
				big = append(big, s)
			} else {
				small = append(small, s)
			}
		}
		sets := intervalSets(small, func(s int) float64 { return load[s] })
		for _, s := range big {
			sets = append(sets, []int{s})
		}
		if len(sets) == 0 {
			continue
		}
		bestSet, bestU := -1, math.Inf(-1)
		for i, set := range sets {
			sum := 0.0
			for _, s := range set {
				sum += v.Orig.Users[u].Utility[s]
			}
			if sum > bestU {
				bestSet, bestU = i, sum
			}
		}
		keep := make(map[int]struct{}, len(sets[bestSet]))
		for _, s := range sets[bestSet] {
			keep[s] = struct{}{}
		}
		for _, s := range streams {
			if _, ok := keep[s]; !ok {
				chosen.Remove(u, s)
			}
		}
	}

	if err := chosen.CheckFeasible(v.Orig); err != nil {
		return nil, nil, fmt.Errorf("reduction: lifted assignment infeasible: %w", err)
	}
	report.Value = chosen.Utility(v.Orig)
	return chosen, report, nil
}
