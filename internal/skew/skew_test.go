package skew

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
	"repro/internal/smd"
)

func randomSkewed(seed int64, streams, users int, alpha float64) *mmd.Instance {
	in, err := generator.RandomSMD{
		Streams: streams, Users: users, Seed: seed, Skew: alpha,
	}.Generate()
	if err != nil {
		panic(err)
	}
	return in
}

func TestDecomposeRejectsMultiBudget(t *testing.T) {
	in := randomSkewed(1, 4, 2, 4)
	in.Budgets = append(in.Budgets, 5)
	for s := range in.Streams {
		in.Streams[s].Costs = append(in.Streams[s].Costs, 1)
	}
	if _, err := Decompose(in); err == nil {
		t.Fatal("Decompose accepted a multi-budget instance")
	}
}

// TestDecomposePartition: every positive-utility pair appears in exactly
// one band (the key fact behind sum_i OPT_i >= OPT/2 in Theorem 3.1).
func TestDecomposePartition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(21))}
	property := func(seed int64) bool {
		in := randomSkewed(seed, 8, 4, 16)
		dec, err := Decompose(in)
		if err != nil {
			return false
		}
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				count := 0
				for _, band := range dec.Bands {
					if band.Instance.Utility[u][s] > 0 {
						count++
					}
				}
				want := 0
				if in.Users[u].Utility[s] > 0 {
					want = 1
				}
				if count != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeBandCount: at most 1 + floor(log2 alpha) bands.
func TestDecomposeBandCount(t *testing.T) {
	for _, alpha := range []float64{1, 2, 7, 16, 100} {
		in := randomSkewed(3, 12, 5, alpha)
		dec, err := Decompose(in)
		if err != nil {
			t.Fatal(err)
		}
		maxLoaded := 1 + int(math.Floor(math.Log2(math.Max(dec.Alpha, 1))))
		if len(dec.Bands) > maxLoaded+1 { // +1 for the free band
			t.Fatalf("alpha %v: %d bands > limit %d", dec.Alpha, len(dec.Bands), maxLoaded+1)
		}
		for _, b := range dec.Bands {
			if b.Index < FreeBand || b.Index > maxLoaded {
				t.Fatalf("band index %d out of [%d, %d]", b.Index, FreeBand, maxLoaded)
			}
		}
	}
}

// TestDecomposeBandsAreUnitSkewBounded: within band i, normalized ratios
// lie in [2^{i-1}, 2^i) (so each band's instance has skew < 2).
func TestDecomposeBandRatios(t *testing.T) {
	in := randomSkewed(4, 12, 5, 64)
	dec, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	norm := dec.Normalized
	for _, band := range dec.Bands {
		if band.Index == FreeBand {
			continue
		}
		lo := math.Pow(2, float64(band.Index-1))
		hi := math.Pow(2, float64(band.Index))
		for u := 0; u < in.NumUsers(); u++ {
			if len(norm.Users[u].Loads) != 1 {
				continue
			}
			for s := 0; s < in.NumStreams(); s++ {
				if band.Instance.Utility[u][s] <= 0 {
					continue
				}
				r := norm.Users[u].Utility[s] / norm.Users[u].Loads[0][s]
				// Boundary bands absorb clamped ratios; allow the last
				// band to include its upper endpoint.
				if r < lo-1e-9 || (r > hi+1e-9 && band.Index < len(dec.Bands)+dec.Bands[0].Index) {
					if band.Index == dec.Bands[len(dec.Bands)-1].Index && r >= lo {
						continue
					}
					t.Fatalf("band %d: ratio %v outside [%v, %v)", band.Index, r, lo, hi)
				}
			}
		}
	}
}

func TestSolveFeasibleAndDeterministic(t *testing.T) {
	for _, alpha := range []float64{1, 8, 64} {
		in := randomSkewed(5, 14, 6, alpha)
		a1, rep1, err := Solve(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := a1.CheckFeasible(in); err != nil {
			t.Fatalf("alpha %v: infeasible: %v", alpha, err)
		}
		a2, rep2, err := Solve(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep1.Value != rep2.Value || !a1.Equal(a2) {
			t.Fatalf("alpha %v: Solve not deterministic", alpha)
		}
		if rep1.Value != a1.Utility(in) {
			t.Fatalf("report value %v != assignment utility %v", rep1.Value, a1.Utility(in))
		}
	}
}

// TestTheorem31Ratio: the classify-and-select solution is within
// 2 * t * (3e/(e-1)) of optimal, where t is the number of bands (the
// factor-2 from the partition argument, t from picking one band, and the
// unit-skew algorithm's constant).
func TestTheorem31Ratio(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 12; trial++ {
		alpha := []float64{1, 4, 16, 64}[trial%4]
		in := randomSkewed(rng.Int63(), 9, 4, alpha)
		a, rep, err := Solve(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Value == 0 {
			continue
		}
		tBands := 1 + math.Floor(math.Log2(math.Max(rep.Alpha, 1)))
		bound := 2 * tBands * (3 * math.E / (math.E - 1))
		if ratio := opt.Value / math.Max(a.Utility(in), 1e-12); ratio > bound+1e-9 {
			t.Fatalf("trial %d (alpha %v): ratio %v exceeds bound %v", trial, rep.Alpha, ratio, bound)
		}
	}
}

// TestSolveUnconstrainedUser: users without any capacity measure are
// still served (they land in the unconstrained band).
func TestSolveUnconstrainedUser(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{1}},
			{Name: "b", Costs: []float64{1}},
		},
		Users: []mmd.User{
			{Name: "free", Utility: []float64{5, 3}},
		},
		Budgets: []float64{2},
	}
	a, rep, err := Solve(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != 8 {
		t.Fatalf("value = %v, want 8 (both streams fit)", rep.Value)
	}
	if !a.Has(0, 0) || !a.Has(0, 1) {
		t.Fatal("unconstrained user should receive both streams")
	}
}

func TestSolveCustomBandSolverError(t *testing.T) {
	in := randomSkewed(6, 6, 3, 4)
	wantErr := errors.New("band solver failed")
	_, _, err := Solve(in, func(*smd.Instance) (*smd.Assignment, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Solve() = %v, want wrapped band solver error", err)
	}
}
