package skew

import (
	"testing"

	"repro/internal/mmd"
	"repro/internal/reduction"
)

// TestFreeBandZeroLoadPairs: pairs with positive utility and zero load
// (e.g. the big streams of the Section 4.2 tightness family after the
// reduction) land in the free band and are still solvable.
func TestFreeBandZeroLoadPairs(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "free", Costs: []float64{1}},
			{Name: "loaded", Costs: []float64{1}},
		},
		Users: []mmd.User{{
			Name:       "u",
			Utility:    []float64{7, 3},
			Loads:      [][]float64{{0, 2}},
			Capacities: []float64{2},
		}},
		Budgets: []float64{2},
	}
	dec, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	foundFree := false
	for _, b := range dec.Bands {
		if b.Index == FreeBand {
			foundFree = true
			if b.Instance.Utility[0][0] != 7 {
				t.Fatalf("free band utility = %v, want original 7", b.Instance.Utility[0][0])
			}
			if b.Instance.Utility[0][1] != 0 {
				t.Fatal("loaded pair leaked into the free band")
			}
		}
	}
	if !foundFree {
		t.Fatal("no free band produced for a zero-load pair")
	}

	a, rep, err := Solve(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	// Both streams fit the budget; the free stream alone is worth 7, the
	// loaded band alone 3; best band carries at least 7.
	if rep.Value < 7 {
		t.Fatalf("value = %v, want >= 7", rep.Value)
	}
}

// TestFreeBandOnTightnessReduction runs the decomposition on the reduced
// tightness instance, which mixes free (big) and loaded (small) pairs.
func TestFreeBandOnTightnessReduction(t *testing.T) {
	in, err := reduction.TightnessInstance(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	view, err := reduction.ToSMD(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(view.SMD)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, b := range dec.Bands {
		pairs += b.Pairs
	}
	if want := view.SMD.SupportSize(); pairs != want {
		t.Fatalf("bands carry %d pairs, want all %d", pairs, want)
	}
}
