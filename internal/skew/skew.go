// Package skew implements the classify-and-select reduction of Section 3
// of Patt-Shamir & Rawitz: an SMD instance with arbitrary local skew
// alpha is decomposed into t = 1 + floor(log2 alpha) unit-skew SMD
// sub-instances, one per utility-per-load band [2^{i-1}, 2^i). Solving
// each band with a constant-factor unit-skew algorithm and keeping the
// best solution yields an O(log 2*alpha)-approximation (Theorem 3.1).
//
// Pairs whose load is zero (a stream that consumes none of a user's
// capacity, e.g. after the Section 4 reduction when the user has no
// finite capacity at all) have unbounded utility-per-load ratio. They
// are collected in a separate "free" band whose sub-instance carries the
// original utilities with an infinite cap — exact for those pairs, since
// they never contend for user capacity. This adds at most one band to
// the paper's t.
package skew

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mmd"
	"repro/internal/smd"
)

// ErrNotSMD is returned when the input instance has more than one server
// budget or more than one capacity measure at some user.
var ErrNotSMD = errors.New("skew: instance is not single-budget single-capacity")

// FreeBand is the band index of the zero-load pairs.
const FreeBand = 0

// Band is one unit-skew sub-instance of the decomposition.
type Band struct {
	// Index is the band number: FreeBand for zero-load pairs, otherwise
	// i in [1, t] meaning normalized utility-per-load ratios in
	// [2^{i-1}, 2^i).
	Index int
	// Instance is the unit-skew SMD sub-instance. For loaded bands the
	// utilities are the normalized loads and the cap is the user's
	// capacity (w^i_u = k_u, W^i_u = K^u); for the free band the
	// utilities are the original utilities with an infinite cap.
	Instance *smd.Instance
	// Pairs counts the (user, stream) pairs carried by this band.
	Pairs int
}

// Decomposition is the result of Decompose.
type Decomposition struct {
	// Normalized is the load-normalized copy of the input instance
	// (same feasible assignments and values as the original).
	Normalized *mmd.Instance
	// Alpha is the local skew of the input over its finitely-skewed
	// pairs (1 when every pair is free or exactly proportional).
	Alpha float64
	// Bands are the non-empty sub-instances; at most
	// 2 + floor(log2 Alpha) of them (the paper's t plus the free band).
	Bands []Band
}

// Decompose splits an SMD instance (one server budget, at most one
// capacity measure per user) with arbitrary skew into unit-skew bands.
// Every (user, stream) pair with positive utility lands in exactly one
// band, so the sum of band optima is at least half the original optimum
// (proof of Theorem 3.1).
func Decompose(in *mmd.Instance) (*Decomposition, error) {
	if !in.IsSMD() {
		return nil, fmt.Errorf("m=%d, mc=%d: %w", in.M(), in.MC(), ErrNotSMD)
	}
	norm := in.Clone()
	nS, nU := norm.NumStreams(), norm.NumUsers()

	// Per-user normalization over loaded pairs: scale the load row and
	// capacity so the smallest utility-per-load ratio is exactly 1.
	// Zero-load pairs are skipped (they go to the free band).
	alpha := 1.0
	for u := 0; u < nU; u++ {
		usr := &norm.Users[u]
		if len(usr.Loads) != 1 {
			continue
		}
		minRatio, maxRatio := math.Inf(1), 0.0
		for s, w := range usr.Utility {
			if w <= 0 {
				continue
			}
			if k := usr.Loads[0][s]; k > 0 {
				r := w / k
				minRatio = math.Min(minRatio, r)
				maxRatio = math.Max(maxRatio, r)
			}
		}
		if maxRatio == 0 {
			continue // all pairs free on this measure
		}
		for s := range usr.Loads[0] {
			usr.Loads[0][s] *= minRatio
		}
		if !math.IsInf(usr.Capacities[0], 1) {
			usr.Capacities[0] *= minRatio
		}
		alpha = math.Max(alpha, maxRatio/minRatio)
	}

	t := 1 + int(math.Floor(math.Log2(alpha)))
	if t < 1 {
		t = 1
	}

	// bandOf[u][s] = band index of the pair, or -1 when w_u(S) = 0.
	counts := make([]int, t+1) // index 0 is the free band
	bandOf := make([][]int, nU)
	for u := 0; u < nU; u++ {
		bandOf[u] = make([]int, nS)
		usr := &norm.Users[u]
		for s, w := range usr.Utility {
			bandOf[u][s] = -1
			if w <= 0 {
				continue
			}
			b := FreeBand
			if len(usr.Loads) == 1 && usr.Loads[0][s] > 0 {
				// After normalization w/k >= 1, so log2 >= 0.
				r := w / usr.Loads[0][s]
				b = int(math.Floor(math.Log2(r))) + 1
				if b < 1 {
					b = 1
				}
				if b > t {
					b = t
				}
			}
			bandOf[u][s] = b
			counts[b]++
		}
	}

	names := make([]string, nS)
	costs := make([]float64, nS)
	for s := range norm.Streams {
		names[s] = norm.Streams[s].Name
		costs[s] = norm.Streams[s].Costs[0]
	}

	dec := &Decomposition{Normalized: norm, Alpha: alpha}
	for b := 0; b <= t; b++ {
		if counts[b] == 0 {
			continue
		}
		sub := &smd.Instance{
			StreamNames: names,
			Costs:       costs,
			Budget:      norm.Budgets[0],
			Utility:     make([][]float64, nU),
			Caps:        make([]float64, nU),
		}
		pairs := 0
		for u := 0; u < nU; u++ {
			usr := &norm.Users[u]
			row := make([]float64, nS)
			cap := math.Inf(1)
			if b != FreeBand && len(usr.Loads) == 1 {
				cap = usr.Capacities[0]
			}
			for s := range row {
				if bandOf[u][s] != b {
					continue
				}
				pairs++
				if b == FreeBand {
					row[s] = usr.Utility[s] // zero-load pair: exact
				} else {
					row[s] = usr.Loads[0][s] // w^i_u = k_u
				}
			}
			sub.Utility[u] = row
			sub.Caps[u] = cap
		}
		dec.Bands = append(dec.Bands, Band{Index: b, Instance: sub, Pairs: pairs})
	}
	return dec, nil
}

// BandSolver solves one unit-skew SMD sub-instance; it must return a
// feasible assignment. smd.FixedGreedy (wrapped by DefaultBandSolver) is
// the paper's choice.
type BandSolver func(*smd.Instance) (*smd.Assignment, error)

// DefaultBandSolver applies smd.FixedGreedy.
func DefaultBandSolver(in *smd.Instance) (*smd.Assignment, error) {
	res, err := smd.FixedGreedy(in)
	if err != nil {
		return nil, err
	}
	return res.Best, nil
}

// Report describes a Solve run.
type Report struct {
	// Alpha is the local skew of the input.
	Alpha float64
	// Bands is the number of non-empty bands solved.
	Bands int
	// BandValues[i] is the value, under the ORIGINAL utilities, of the
	// candidate produced by band i (parallel to the decomposition's
	// Bands slice).
	BandValues []float64
	// BestBand is the band index whose candidate won.
	BestBand int
	// Value is the value of the returned assignment.
	Value float64
}

// Solve runs the full Theorem 3.1 pipeline: decompose into bands, solve
// each with the given solver (nil selects DefaultBandSolver), evaluate
// every candidate under the original utilities, and return the best
// feasible assignment for the original instance.
func Solve(in *mmd.Instance, solver BandSolver) (*mmd.Assignment, *Report, error) {
	if solver == nil {
		solver = DefaultBandSolver
	}
	dec, err := Decompose(in)
	if err != nil {
		return nil, nil, err
	}
	report := &Report{
		Alpha:      dec.Alpha,
		Bands:      len(dec.Bands),
		BandValues: make([]float64, len(dec.Bands)),
		BestBand:   -1,
	}
	var best *mmd.Assignment
	bestVal := math.Inf(-1)
	for i, band := range dec.Bands {
		sub, err := solver(band.Instance)
		if err != nil {
			return nil, nil, fmt.Errorf("skew: band %d: %w", band.Index, err)
		}
		cand := toMMD(sub, in.NumUsers())
		if err := cand.CheckFeasible(dec.Normalized); err != nil {
			return nil, nil, fmt.Errorf("skew: band %d produced infeasible assignment: %w", band.Index, err)
		}
		v := cand.Utility(in)
		report.BandValues[i] = v
		if v > bestVal {
			best, bestVal = cand, v
			report.BestBand = band.Index
		}
	}
	if best == nil {
		best = mmd.NewAssignment(in.NumUsers())
		bestVal = 0
	}
	report.Value = bestVal
	return best, report, nil
}

// toMMD converts an SMD assignment into an MMD assignment with the same
// (user, stream) pairs.
func toMMD(a *smd.Assignment, numUsers int) *mmd.Assignment {
	out := mmd.NewAssignment(numUsers)
	for u := 0; u < numUsers; u++ {
		for _, s := range a.UserStreams(u) {
			out.Add(u, s)
		}
	}
	return out
}
