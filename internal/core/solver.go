// Package core assembles the paper's algorithms into the end-to-end
// solver of Theorem 1.1: reduce the multi-budget instance to a
// single-budget one (Section 4), decompose by skew band (Section 3),
// solve each band with the fixed greedy (Section 2), lift every band
// candidate back through the output transformation, and return the best
// feasible assignment. The overall guarantee is
// O(m * m_c * log(2*alpha*m_c)) with O(n^2) running time.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mmd"
	"repro/internal/reduction"
	"repro/internal/skew"
	"repro/internal/smd"
)

// Algorithm selects the SMD building block used inside the pipeline.
type Algorithm int

// Available building blocks.
const (
	// AlgoFixedGreedy is the O(n^2) Theorem 2.8 algorithm (default).
	AlgoFixedGreedy Algorithm = iota + 1
	// AlgoPartialEnum is the slower Section 2.3 algorithm with the
	// sharper constant.
	AlgoPartialEnum
)

// Options configures Solve.
type Options struct {
	// Algorithm selects the unit-skew SMD solver (default
	// AlgoFixedGreedy).
	Algorithm Algorithm
	// SeedSize is the partial-enumeration seed size (default 2) when
	// Algorithm is AlgoPartialEnum.
	SeedSize int
	// PaperFaithfulLift uses the literal Theorem 4.3 output
	// transformation (keep a single candidate set) instead of the
	// default greedy-merging lift, which admits candidate sets in
	// utility order while the true budgets hold. The merging lift never
	// returns less utility, so the guarantee is unchanged; this knob
	// exists for the lift ablation experiment.
	PaperFaithfulLift bool
}

// Report describes a Solve run.
type Report struct {
	// Value is the utility of the returned assignment.
	Value float64
	// Alpha is the local skew of the reduced single-budget instance
	// (at most m_c times the original instance's skew, Lemma 4.1).
	Alpha float64
	// Bands is the number of skew bands solved.
	Bands int
	// BandValues[i] is the lifted value of band i's candidate.
	BandValues []float64
	// SingleStreamValue is the value of the best single-stream fallback
	// candidate (always feasible because c_i(S) <= B_i).
	SingleStreamValue float64
	// DirectGreedyValue is the value of the implementation-added
	// utility-aware direct greedy candidate (0 in paper-faithful mode).
	DirectGreedyValue float64
	// ApproxFactor is the a-priori guarantee for this instance: with the
	// fixed greedy as the building block, (2m-1)(2mc-1) * t * (3e/(e-1))
	// where t = 1 + floor(log2 alpha) is the number of bands.
	ApproxFactor float64
}

// Solve runs the full Theorem 1.1 pipeline and returns a feasible
// assignment for the instance. The instance must pass mmd.Validate;
// utilities of streams a user cannot hold should already be zero (run
// ZeroOverloadedUtilities first if unsure).
func Solve(in *mmd.Instance, opts Options) (*mmd.Assignment, *Report, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	bandSolver := skew.DefaultBandSolver
	if opts.Algorithm == AlgoPartialEnum {
		seedSize := opts.SeedSize
		if seedSize == 0 {
			seedSize = 2
		}
		bandSolver = func(sub *smd.Instance) (*smd.Assignment, error) {
			res, err := smd.PartialEnum(sub, seedSize)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		}
	}

	// Step 1 (Section 4.1): multi-budget -> single-budget.
	view, err := reduction.ToSMD(in)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	// Step 2 (Section 3): decompose the reduced instance by skew band.
	dec, err := skew.Decompose(view.SMD)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	report := &Report{
		Alpha:      dec.Alpha,
		Bands:      len(dec.Bands),
		BandValues: make([]float64, len(dec.Bands)),
	}

	// Step 3+4: solve each band (Section 2) and lift each candidate back
	// to the original multi-budget instance (Theorem 4.3). Lifting every
	// candidate and comparing final values dominates the paper's
	// "pick the best band first, lift once" order. Bands are independent,
	// so they are solved concurrently; the winner is chosen by an
	// in-order scan afterwards, keeping results bit-for-bit deterministic.
	lift := reduction.LiftGreedy
	if opts.PaperFaithfulLift {
		lift = reduction.Lift
	}
	type bandOut struct {
		lifted *mmd.Assignment
		value  float64
		err    error
	}
	outs := make([]bandOut, len(dec.Bands))
	var wg sync.WaitGroup
	for i := range dec.Bands {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			band := dec.Bands[i]
			sub, err := bandSolver(band.Instance)
			if err != nil {
				outs[i].err = fmt.Errorf("core: band %d: %w", band.Index, err)
				return
			}
			cand := mmd.NewAssignment(in.NumUsers())
			for u := 0; u < in.NumUsers(); u++ {
				for _, s := range sub.UserStreams(u) {
					cand.Add(u, s)
				}
			}
			lifted, _, err := lift(view, cand)
			if err != nil {
				outs[i].err = fmt.Errorf("core: band %d: %w", band.Index, err)
				return
			}
			outs[i] = bandOut{lifted: lifted, value: lifted.Utility(in)}
		}()
	}
	wg.Wait()

	var best *mmd.Assignment
	bestVal := math.Inf(-1)
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
		report.BandValues[i] = outs[i].value
		if outs[i].value > bestVal {
			best, bestVal = outs[i].lifted, outs[i].value
		}
	}

	// Safety net: the best single-stream assignment is always feasible
	// (c_i(S) <= B_i and zero-overloaded utilities), and covers the
	// degenerate cases (no bands, empty candidates).
	single, singleVal := bestSingleStream(in)
	report.SingleStreamValue = singleVal
	if singleVal > bestVal {
		best, bestVal = single, singleVal
	}

	// Implementation-added candidate: utility-aware greedy directly on
	// the multi-budget instance (no own guarantee; taking the max over
	// candidates preserves the pipeline's). Disabled in paper-faithful
	// mode so ablations can isolate the paper's algorithm.
	if !opts.PaperFaithfulLift {
		direct := directGreedy(in)
		if v := direct.Utility(in); v > bestVal {
			best, bestVal = direct, v
		}
		report.DirectGreedyValue = direct.Utility(in)
	}
	if best == nil {
		best = mmd.NewAssignment(in.NumUsers())
		bestVal = 0
	}
	if err := best.CheckFeasible(in); err != nil {
		return nil, nil, fmt.Errorf("core: internal error, result infeasible: %w", err)
	}

	report.Value = bestVal
	report.ApproxFactor = approxFactor(in, dec.Alpha)
	return best, report, nil
}

// approxFactor returns the a-priori Theorem 4.4 guarantee for this
// instance with the fixed greedy building block.
func approxFactor(in *mmd.Instance, alpha float64) float64 {
	m := float64(in.M())
	mc := float64(in.MC())
	if mc < 1 {
		mc = 1
	}
	bands := 1 + math.Floor(math.Log2(math.Max(alpha, 1)))
	const greedyFactor = 3 * math.E / (math.E - 1)
	return (2*m - 1) * (2*mc - 1) * bands * greedyFactor
}

// bestSingleStream returns the single stream maximizing total utility
// over the users that can feasibly hold it, assigned to those users.
func bestSingleStream(in *mmd.Instance) (*mmd.Assignment, float64) {
	bestS, bestVal := -1, 0.0
	var bestUsers []int
	for s := 0; s < in.NumStreams(); s++ {
		val := 0.0
		var users []int
		for u := range in.Users {
			usr := &in.Users[u]
			if usr.Utility[s] <= 0 {
				continue
			}
			fits := true
			for j := range usr.Capacities {
				if usr.Loads[j][s] > usr.Capacities[j]+1e-12 {
					fits = false
					break
				}
			}
			if fits {
				val += usr.Utility[s]
				users = append(users, u)
			}
		}
		if val > bestVal {
			bestS, bestVal, bestUsers = s, val, users
		}
	}
	a := mmd.NewAssignment(in.NumUsers())
	if bestS >= 0 {
		for _, u := range bestUsers {
			a.Add(u, bestS)
		}
	}
	return a, bestVal
}
