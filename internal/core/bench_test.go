package core

import (
	"testing"

	"repro/internal/generator"
)

func BenchmarkSolvePipeline(b *testing.B) {
	for _, size := range []struct{ s, u int }{{30, 8}, {100, 20}, {300, 40}} {
		in, err := generator.RandomMMD{
			Streams: size.s, Users: size.u, M: 3, MC: 2, Seed: 11, Skew: 8,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(label(size.s, size.u), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Solve(in, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDirectGreedy(b *testing.B) {
	in, err := generator.RandomMMD{Streams: 100, Users: 20, M: 3, MC: 2, Seed: 12, Skew: 4}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = directGreedy(in)
	}
}

func label(s, u int) string {
	digits := func(x int) string {
		if x == 0 {
			return "0"
		}
		var buf [8]byte
		i := len(buf)
		for x > 0 {
			i--
			buf[i] = byte('0' + x%10)
			x /= 10
		}
		return string(buf[i:])
	}
	return "s" + digits(s) + "u" + digits(u)
}
