package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/reduction"
)

func TestSolveFeasibleAcrossDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, dims := range [][2]int{{1, 1}, {2, 1}, {3, 2}, {4, 3}} {
		m, mc := dims[0], dims[1]
		for trial := 0; trial < 5; trial++ {
			in, err := generator.RandomMMD{
				Streams: 12, Users: 5, M: m, MC: mc, Seed: rng.Int63(), Skew: 8,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			a, rep, err := core.Solve(in, core.Options{})
			if err != nil {
				t.Fatalf("m=%d mc=%d trial %d: %v", m, mc, trial, err)
			}
			if err := a.CheckFeasible(in); err != nil {
				t.Fatalf("m=%d mc=%d trial %d: infeasible: %v", m, mc, trial, err)
			}
			if rep.Value != a.Utility(in) {
				t.Fatalf("report value %v != utility %v", rep.Value, a.Utility(in))
			}
			if rep.Value < 0 {
				t.Fatalf("negative value %v", rep.Value)
			}
		}
	}
}

// TestTheorem11Ratio: the pipeline's value is within its a-priori
// guarantee of the exact optimum.
func TestTheorem11Ratio(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 12; trial++ {
		m := 1 + trial%3
		mc := 1 + trial%2
		in, err := generator.RandomMMD{
			Streams: 9, Users: 4, M: m, MC: mc, Seed: rng.Int63(), Skew: 4,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		a, rep, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Value == 0 {
			continue
		}
		got := a.Utility(in)
		if got*rep.ApproxFactor < opt.Value-1e-9 {
			t.Fatalf("trial %d (m=%d mc=%d): value %v * factor %v < OPT %v",
				trial, m, mc, got, rep.ApproxFactor, opt.Value)
		}
	}
}

func TestSolvePartialEnumAtLeastAsGoodOnAverage(t *testing.T) {
	// Partial enumeration is not pointwise better, but it must never be
	// catastrophically worse; check it stays within 2x of fixed greedy
	// and is feasible.
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 5; trial++ {
		in, err := generator.RandomMMD{
			Streams: 8, Users: 3, M: 2, MC: 1, Seed: rng.Int63(), Skew: 2,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		aG, _, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		aP, _, err := core.Solve(in, core.Options{Algorithm: core.AlgoPartialEnum, SeedSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := aP.CheckFeasible(in); err != nil {
			t.Fatal(err)
		}
		if aP.Utility(in) < aG.Utility(in)/2-1e-9 {
			t.Fatalf("trial %d: partial enum %v far below greedy %v",
				trial, aP.Utility(in), aG.Utility(in))
		}
	}
}

func TestSolveTightnessFamily(t *testing.T) {
	in, err := reduction.TightnessInstance(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, rep, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	// OPT = 3; the guarantee allows losing (2m-1)(2mc-1)*bands*const,
	// but the single-stream fallback ensures at least utility 1.
	if rep.Value < 1-1e-9 {
		t.Fatalf("value %v < 1 on the tightness family", rep.Value)
	}
}

func TestSolveCableTV(t *testing.T) {
	in, err := generator.CableTV{Channels: 30, Gateways: 8, Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a, rep, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if rep.Value <= 0 {
		t.Fatal("cable TV scenario produced zero utility")
	}
	if rep.Bands < 1 {
		t.Fatalf("bands = %d, want >= 1", rep.Bands)
	}
	if rep.Alpha < 1 {
		t.Fatalf("alpha = %v, want >= 1", rep.Alpha)
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 3, Users: 2, M: 1, MC: 1, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	in.Budgets[0] = -1
	if _, _, err := core.Solve(in, core.Options{}); err == nil {
		t.Fatal("Solve accepted an invalid instance")
	}
}

func TestSolveNoFiniteBudget(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 3, Users: 2, M: 1, MC: 1, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	in.Budgets[0] = math.Inf(1)
	if _, _, err := core.Solve(in, core.Options{}); err == nil {
		t.Fatal("Solve should surface ErrNoFiniteBudget")
	}
}

func TestSolveDeterministic(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 14, Users: 6, M: 3, MC: 2, Seed: 9, Skew: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a1, r1, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, r2, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value || !a1.Equal(a2) {
		t.Fatal("Solve is not deterministic")
	}
}
