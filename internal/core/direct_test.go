package core

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/generator"
)

func TestDirectGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 25; trial++ {
		in, err := generator.RandomMMD{
			Streams: 14, Users: 5, M: 3, MC: 2, Seed: rng.Int63(), Skew: 6,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		a := directGreedy(in)
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDirectGreedyRespectsUserCapacities(t *testing.T) {
	in, err := generator.CableTV{Channels: 30, Gateways: 8, Seed: 122, EgressFraction: 0.5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a := directGreedy(in)
	if err := a.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if a.Utility(in) <= 0 {
		t.Fatal("direct greedy produced zero utility on a dense instance")
	}
}

// TestSolveUsuallyBeatsThreshold: with the direct-greedy candidate the
// pipeline should dominate the utility-blind baseline on most seeds and
// decisively in aggregate.
func TestSolveUsuallyBeatsThreshold(t *testing.T) {
	wins, total := 0, 0
	var solverSum, thrSum float64
	for seed := int64(0); seed < 10; seed++ {
		in, err := generator.CableTV{
			Channels: 40, Gateways: 10, Seed: seed, EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := Solve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := baseline.Threshold(in, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		sv, tv := a.Utility(in), b.Utility(in)
		solverSum += sv
		thrSum += tv
		total++
		if sv >= tv {
			wins++
		}
	}
	if wins < total*7/10 {
		t.Fatalf("solver won only %d/%d seeds", wins, total)
	}
	if solverSum < 1.15*thrSum {
		t.Fatalf("aggregate solver %v < 1.15x threshold %v", solverSum, thrSum)
	}
}

// TestPaperFaithfulModeExcludesDirectGreedy keeps ablations honest.
func TestPaperFaithfulModeExcludesDirectGreedy(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 10, Users: 4, M: 2, MC: 1, Seed: 123, Skew: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Solve(in, Options{PaperFaithfulLift: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirectGreedyValue != 0 {
		t.Fatalf("paper-faithful mode reported direct greedy value %v", rep.DirectGreedyValue)
	}
	_, rep2, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DirectGreedyValue <= 0 {
		t.Fatal("default mode should report the direct greedy candidate")
	}
	if rep2.Value < rep2.DirectGreedyValue-1e-9 {
		t.Fatal("Solve returned less than its own direct greedy candidate")
	}
}

func TestDirectGreedyEmptyInstance(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 1, Users: 1, M: 1, MC: 1, Seed: 124}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Zero out all utilities: greedy must terminate with nothing.
	for u := range in.Users {
		for s := range in.Users[u].Utility {
			in.Users[u].Utility[s] = 0
		}
	}
	a := directGreedy(in)
	if a.Pairs() != 0 {
		t.Fatal("direct greedy assigned zero-utility pairs")
	}
}
