package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
)

// TestSolveManyBandsConcurrent exercises the concurrent band fan-out
// in Solve (solver.go) on a high-skew instance that decomposes into
// many bands, from several goroutines at once. Run under -race (the CI
// does) it proves the fan-out's outs-slice discipline: each band
// goroutine writes only its own index. It also asserts that concurrent
// callers all see the same bit-identical result — the in-order winner
// scan must make Solve deterministic regardless of goroutine timing.
func TestSolveManyBandsConcurrent(t *testing.T) {
	in, err := generator.RandomMMD{
		Streams: 24, Users: 6, M: 3, MC: 2, Seed: 77, Skew: 4096,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bands < 4 {
		t.Fatalf("instance decomposed into only %d bands; fan-out barely exercised", rep.Bands)
	}

	const callers = 8
	values := make([]float64, callers)
	bandValues := make([][]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, r, err := core.Solve(in, core.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if err := a.CheckFeasible(in); err != nil {
				t.Errorf("caller %d: infeasible: %v", i, err)
				return
			}
			values[i] = r.Value
			bandValues[i] = r.BandValues
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if values[i] != values[0] {
			t.Fatalf("caller %d value %v != caller 0 value %v", i, values[i], values[0])
		}
		for b := range bandValues[i] {
			if bandValues[i][b] != bandValues[0][b] {
				t.Fatalf("caller %d band %d value %v != %v",
					i, b, bandValues[i][b], bandValues[0][b])
			}
		}
	}
}
