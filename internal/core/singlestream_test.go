package core

import (
	"testing"

	"repro/internal/mmd"
)

// singleStreamInstance builds a 1-budget, 1-capacity instance from
// per-user utility rows and load rows (loads index streams).
func singleStreamInstance(costs []float64, budget float64, users []struct {
	utility, loads []float64
	capacity       float64
}) *mmd.Instance {
	in := &mmd.Instance{Budgets: []float64{budget}}
	for s, c := range costs {
		in.Streams = append(in.Streams, mmd.Stream{Name: "s", Costs: []float64{c}})
		_ = s
	}
	for _, u := range users {
		in.Users = append(in.Users, mmd.User{
			Name:       "u",
			Utility:    u.utility,
			Loads:      [][]float64{u.loads},
			Capacities: []float64{u.capacity},
		})
	}
	return in
}

func TestBestSingleStreamEdgeCases(t *testing.T) {
	type userSpec = struct {
		utility, loads []float64
		capacity       float64
	}
	const tol = 1e-12
	cases := []struct {
		name      string
		in        *mmd.Instance
		wantValue float64
		wantPairs map[int][]int // user -> streams
	}{
		{
			name: "all-zero utilities yield the empty assignment",
			in: singleStreamInstance([]float64{1, 1}, 10, []userSpec{
				{utility: []float64{0, 0}, loads: []float64{1, 1}, capacity: 5},
				{utility: []float64{0, 0}, loads: []float64{1, 1}, capacity: 5},
			}),
			wantValue: 0,
			wantPairs: map[int][]int{},
		},
		{
			name: "load exactly at the capacity+1e-12 boundary still fits",
			in: singleStreamInstance([]float64{1}, 10, []userSpec{
				{utility: []float64{3}, loads: []float64{1 + tol}, capacity: 1},
			}),
			wantValue: 3,
			wantPairs: map[int][]int{0: {0}},
		},
		{
			name: "load just past the tolerance is rejected",
			in: singleStreamInstance([]float64{1}, 10, []userSpec{
				{utility: []float64{3}, loads: []float64{1 + 3*tol}, capacity: 1},
			}),
			wantValue: 0,
			wantPairs: map[int][]int{},
		},
		{
			name: "user with no feasible stream is skipped, not the whole stream",
			in: singleStreamInstance([]float64{1, 1}, 10, []userSpec{
				// User 0 wants both streams but can hold neither.
				{utility: []float64{5, 5}, loads: []float64{2, 2}, capacity: 1},
				// User 1 can hold stream 1 only.
				{utility: []float64{0, 4}, loads: []float64{2, 1}, capacity: 1},
			}),
			wantValue: 4,
			wantPairs: map[int][]int{1: {1}},
		},
		{
			name: "aggregate utility across holders picks the winner",
			in: singleStreamInstance([]float64{1, 1}, 10, []userSpec{
				// Stream 0: one user at 6. Stream 1: two users at 4 each.
				{utility: []float64{6, 4}, loads: []float64{1, 1}, capacity: 2},
				{utility: []float64{0, 4}, loads: []float64{1, 1}, capacity: 2},
			}),
			wantValue: 8,
			wantPairs: map[int][]int{0: {1}, 1: {1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, val := bestSingleStream(tc.in)
			if val != tc.wantValue {
				t.Fatalf("value = %v, want %v", val, tc.wantValue)
			}
			pairs := 0
			for u := 0; u < a.NumUsers(); u++ {
				got := a.UserStreams(u)
				want := tc.wantPairs[u]
				pairs += len(got)
				if len(got) != len(want) {
					t.Fatalf("user %d streams = %v, want %v", u, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("user %d streams = %v, want %v", u, got, want)
					}
				}
			}
			// The fallback must honor its own feasibility promise.
			if err := a.CheckFeasible(tc.in); err != nil {
				t.Fatalf("bestSingleStream returned infeasible assignment: %v", err)
			}
		})
	}
}
