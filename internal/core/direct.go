package core

import (
	"math"

	"repro/internal/mmd"
)

// directGreedy is an implementation-added candidate with no worst-case
// guarantee of its own (the pipeline's guaranteed candidates provide
// that): a utility-aware greedy working directly on the original
// multi-budget instance. Each round it picks the stream with the best
// marginal utility per unit of budget-normalized cost — counting only
// users whose remaining capacities can actually hold the stream — and
// transmits it if every server budget still fits. Because Solve returns
// the best of all candidates, adding this one can only help; on
// non-adversarial workloads it is usually the strongest candidate (see
// experiment E9).
func directGreedy(in *mmd.Instance) *mmd.Assignment {
	nS, nU := in.NumStreams(), in.NumUsers()
	assn := mmd.NewAssignment(nU)

	budgetLeft := append([]float64(nil), in.Budgets...)
	capLeft := make([][]float64, nU)
	for u := range in.Users {
		capLeft[u] = append([]float64(nil), in.Users[u].Capacities...)
	}
	chosen := make([]bool, nS)

	// normCost is the merged cost used for ranking (feasibility is
	// checked against the real budgets separately).
	normCost := make([]float64, nS)
	for s := 0; s < nS; s++ {
		for i, c := range in.Streams[s].Costs {
			if b := in.Budgets[i]; b > 0 && !math.IsInf(b, 1) {
				normCost[s] += c / b
			}
		}
	}

	fitsUser := func(u, s int) bool {
		usr := &in.Users[u]
		for j := range usr.Capacities {
			if usr.Loads[j][s] > capLeft[u][j]+1e-12 {
				return false
			}
		}
		return true
	}

	for {
		bestS, bestMarginal, bestCost := -1, 0.0, 0.0
		for s := 0; s < nS; s++ {
			if chosen[s] {
				continue
			}
			fits := true
			for i, c := range in.Streams[s].Costs {
				if c > budgetLeft[i]+1e-12 {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			marginal := 0.0
			for u := 0; u < nU; u++ {
				if w := in.Users[u].Utility[s]; w > 0 && fitsUser(u, s) {
					marginal += w
				}
			}
			if marginal <= 0 {
				continue
			}
			// Compare marginal/normCost by cross-multiplication so
			// zero-cost streams (infinite effectiveness) order first.
			if bestS < 0 || marginal*bestCost > bestMarginal*normCost[s] ||
				(marginal*bestCost == bestMarginal*normCost[s] && marginal > bestMarginal) {
				bestS, bestMarginal, bestCost = s, marginal, normCost[s]
			}
		}
		if bestS < 0 {
			return assn
		}
		chosen[bestS] = true
		for i, c := range in.Streams[bestS].Costs {
			budgetLeft[i] -= c
		}
		for u := 0; u < nU; u++ {
			if in.Users[u].Utility[bestS] > 0 && fitsUser(u, bestS) {
				for j := range capLeft[u] {
					capLeft[u][j] -= in.Users[u].Loads[j][bestS]
				}
				assn.Add(u, bestS)
			}
		}
	}
}
