package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
)

// solveCase is one randomized Solve property check, shared by the fuzz
// target and its seeded table-driven twin.
type solveCase struct {
	seed                  int64
	streams, users, m, mc int
	skew                  float64
}

// seededCases is the corpus: it seeds the fuzzer and doubles as the
// deterministic table for -short runs.
var seededCases = []solveCase{
	{seed: 1, streams: 10, users: 4, m: 1, mc: 1, skew: 1},
	{seed: 2, streams: 12, users: 5, m: 3, mc: 2, skew: 8},
	{seed: 3, streams: 8, users: 3, m: 2, mc: 1, skew: 64},
	{seed: 4, streams: 14, users: 6, m: 4, mc: 3, skew: 4},
	{seed: 5, streams: 1, users: 1, m: 1, mc: 1, skew: 1},
	{seed: 6, streams: 9, users: 2, m: 2, mc: 2, skew: 1024},
}

// clampCase maps arbitrary fuzz inputs into the supported instance
// family (dimensions bounded so a fuzz iteration stays fast).
func clampCase(c solveCase) solveCase {
	mod := func(v, lo, hi int) int {
		n := hi - lo + 1
		return lo + ((v%n)+n)%n
	}
	c.streams = mod(c.streams, 1, 14)
	c.users = mod(c.users, 1, 6)
	c.m = mod(c.m, 1, 4)
	c.mc = mod(c.mc, 1, 3)
	if c.skew < 1 || c.skew > 1<<20 || c.skew != c.skew {
		c.skew = 1
	}
	return c
}

// checkSolve asserts the Solve contract on one generated instance:
// the assignment is feasible, its value matches the report, and the
// pipeline never returns less than its own fallback candidates (the
// best single stream and the direct greedy).
func checkSolve(t *testing.T, c solveCase) {
	t.Helper()
	in, err := generator.RandomMMD{
		Streams: c.streams, Users: c.users, M: c.m, MC: c.mc,
		Seed: c.seed, Skew: c.skew,
	}.Generate()
	if err != nil {
		t.Fatalf("%+v: generate: %v", c, err)
	}
	a, rep, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatalf("%+v: solve: %v", c, err)
	}
	if err := a.CheckFeasible(in); err != nil {
		t.Fatalf("%+v: infeasible assignment: %v", c, err)
	}
	const eps = 1e-9
	if got := a.Utility(in); got < rep.Value-eps || got > rep.Value+eps {
		t.Fatalf("%+v: report value %v != assignment utility %v", c, rep.Value, got)
	}
	if rep.Value < rep.SingleStreamValue-eps {
		t.Fatalf("%+v: value %v below single-stream candidate %v",
			c, rep.Value, rep.SingleStreamValue)
	}
	if rep.Value < rep.DirectGreedyValue-eps {
		t.Fatalf("%+v: value %v below direct-greedy candidate %v",
			c, rep.Value, rep.DirectGreedyValue)
	}
}

// FuzzSolveFeasible fuzzes the full Theorem 1.1 pipeline over random
// generator instances: Solve must always return a feasible assignment
// whose value is at least both fallback candidates reported in Report.
func FuzzSolveFeasible(f *testing.F) {
	for _, c := range seededCases {
		f.Add(c.seed, c.streams, c.users, c.m, c.mc, c.skew)
	}
	f.Fuzz(func(t *testing.T, seed int64, streams, users, m, mc int, skew float64) {
		checkSolve(t, clampCase(solveCase{
			seed: seed, streams: streams, users: users, m: m, mc: mc, skew: skew,
		}))
	})
}

// TestSolveFeasibleSeeded is the table-driven twin of FuzzSolveFeasible
// for -short runs: the same property over the fuzz corpus.
func TestSolveFeasibleSeeded(t *testing.T) {
	for _, c := range seededCases {
		checkSolve(t, clampCase(c))
	}
}
