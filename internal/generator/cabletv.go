package generator

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mmd"
)

// Tier is a video quality tier.
type Tier int

// Video quality tiers with their typical bitrates.
const (
	TierSD Tier = iota + 1
	TierHD
	TierUHD
)

// BitrateMbps returns the tier's nominal bitrate.
func (t Tier) BitrateMbps() float64 {
	switch t {
	case TierSD:
		return 4
	case TierHD:
		return 8
	case TierUHD:
		return 16
	default:
		return 8
	}
}

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierSD:
		return "SD"
	case TierHD:
		return "HD"
	case TierUHD:
		return "UHD"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Server cost measure indices of cable-TV instances.
const (
	MeasureBandwidth = 0 // egress Mbps
	MeasureCPU       = 1 // transcoding units
	MeasurePorts     = 2 // input ports
)

// CableTV describes the paper's motivating scenario: a cable head-end
// with m = 3 server budgets (egress bandwidth, processing, input ports)
// serving neighborhood video gateways, each with a downlink capacity and
// a revenue cap. Channel popularity is Zipf-distributed, so a few
// channels are wanted by almost everyone and the tail by few — the
// regime in which utility-blind admission leaves most value on the
// table.
type CableTV struct {
	// Channels and Gateways are the instance dimensions.
	Channels, Gateways int
	// Seed drives all randomness.
	Seed int64
	// ZipfS is the Zipf exponent of channel popularity (default 1.1).
	ZipfS float64
	// EgressFraction is the egress budget as a fraction of total catalog
	// bandwidth (default 0.35).
	EgressFraction float64
	// DownlinkMbps is each gateway's downlink capacity (default 40).
	DownlinkMbps float64
	// RevenueCap bounds the revenue counted per gateway (default 60).
	RevenueCap float64
}

func (c CableTV) withDefaults() CableTV {
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.EgressFraction == 0 {
		c.EgressFraction = 0.35
	}
	if c.DownlinkMbps == 0 {
		c.DownlinkMbps = 40
	}
	if c.RevenueCap == 0 {
		c.RevenueCap = 60
	}
	return c
}

// Generate builds the instance. Each gateway has two capacity measures:
// downlink bandwidth (load = stream bitrate) and the revenue cap (load =
// utility, unit skew), appended via AddUtilityCapMeasure.
func (c CableTV) Generate() (*mmd.Instance, error) {
	c = c.withDefaults()
	if c.Channels < 1 || c.Gateways < 1 {
		return nil, fmt.Errorf("generator: need at least one channel and one gateway; got %d, %d",
			c.Channels, c.Gateways)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	in := &mmd.Instance{
		Streams: make([]mmd.Stream, c.Channels),
		Users:   make([]mmd.User, c.Gateways),
		Budgets: make([]float64, 3),
	}

	tiers := make([]Tier, c.Channels)
	totalBandwidth := 0.0
	for s := range in.Streams {
		var tier Tier
		switch r := rng.Float64(); {
		case r < 0.3:
			tier = TierSD
		case r < 0.8:
			tier = TierHD
		default:
			tier = TierUHD
		}
		tiers[s] = tier
		bitrate := tier.BitrateMbps() * (0.9 + 0.2*rng.Float64())
		cpu := 1 + rng.Float64()*2 // transcoding cost loosely tracks tier
		if tier == TierUHD {
			cpu *= 2
		}
		in.Streams[s] = mmd.Stream{
			Name:  fmt.Sprintf("ch%02d-%s", s, tier),
			Costs: []float64{bitrate, cpu, 1},
		}
		totalBandwidth += bitrate
	}
	in.Budgets[MeasureBandwidth] = c.EgressFraction * totalBandwidth
	in.Budgets[MeasureCPU] = 0.5 * float64(c.Channels) * 2.5
	in.Budgets[MeasurePorts] = math.Ceil(0.6 * float64(c.Channels))
	// The paper assumes c_i(S) <= B_i; enforce it for tiny catalogs.
	for i := range in.Budgets {
		if mc := maxCost(in, i); in.Budgets[i] < mc {
			in.Budgets[i] = mc
		}
	}

	// Zipf popularity over channels: channel at popularity rank r is
	// wanted with probability ~ 1/r^s (scaled to keep instances dense
	// enough to be interesting).
	ranks := rng.Perm(c.Channels)
	prob := make([]float64, c.Channels)
	for s := range prob {
		prob[s] = math.Min(1, 1.6/math.Pow(float64(ranks[s]+1), c.ZipfS))
	}

	for u := range in.Users {
		usr := mmd.User{
			Name:       fmt.Sprintf("gw%02d", u),
			Utility:    make([]float64, c.Channels),
			Loads:      [][]float64{make([]float64, c.Channels)},
			Capacities: []float64{c.DownlinkMbps},
		}
		for s := range usr.Utility {
			if rng.Float64() >= prob[s] {
				continue
			}
			// Revenue loosely tracks tier quality plus noise.
			base := 2.0
			switch tiers[s] {
			case TierHD:
				base = 4
			case TierUHD:
				base = 7
			}
			usr.Utility[s] = base * (0.7 + 0.6*rng.Float64())
			usr.Loads[0][s] = in.Streams[s].Costs[MeasureBandwidth]
		}
		in.Users[u] = usr
	}

	caps := make([]float64, c.Gateways)
	for u := range caps {
		caps[u] = c.RevenueCap
	}
	if err := in.AddUtilityCapMeasure(caps); err != nil {
		return nil, fmt.Errorf("generator: cable TV: %w", err)
	}
	in.ZeroOverloadedUtilities()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("generator: cable TV: %w", err)
	}
	return in, nil
}
