package generator_test

import (
	"math"
	"testing"

	"repro/internal/generator"
	"repro/internal/mmd"
	"repro/internal/online"
)

func TestRandomSMDValidAndDeterministic(t *testing.T) {
	cfg := generator.RandomSMD{Streams: 20, Users: 8, Seed: 5, Skew: 16}
	in1, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := in1.Validate(); err != nil {
		t.Fatal(err)
	}
	if !in1.IsSMD() {
		t.Fatal("RandomSMD produced a non-SMD instance")
	}
	in2, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if in1.Users[3].Utility[7] != in2.Users[3].Utility[7] ||
		in1.Streams[11].Costs[0] != in2.Streams[11].Costs[0] {
		t.Fatal("same seed produced different instances")
	}
	in3, err := generator.RandomSMD{Streams: 20, Users: 8, Seed: 6, Skew: 16}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range in1.Streams {
		if in1.Streams[s].Costs[0] != in3.Streams[s].Costs[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical costs")
	}
}

func TestRandomSMDSkewTarget(t *testing.T) {
	for _, target := range []float64{1, 8, 64} {
		in, err := generator.RandomSMD{Streams: 40, Users: 10, Seed: 2, Skew: target}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := mmd.LocalSkew(in)
		if err != nil {
			t.Fatal(err)
		}
		if alpha > target*1.001 {
			t.Fatalf("target skew %v: measured %v exceeds target", target, alpha)
		}
		if target == 1 && math.Abs(alpha-1) > 1e-9 {
			t.Fatalf("unit-skew target produced alpha %v", alpha)
		}
		if target >= 8 && alpha < 2 {
			t.Fatalf("target skew %v: measured %v suspiciously low", target, alpha)
		}
	}
}

func TestRandomMMDDimensions(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 15, Users: 6, M: 4, MC: 3, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 4 || in.MC() != 3 {
		t.Fatalf("M=%d MC=%d, want 4/3", in.M(), in.MC())
	}
}

func TestGeneratorsRejectBadDims(t *testing.T) {
	if _, err := (generator.RandomSMD{Streams: 0, Users: 1}).Generate(); err == nil {
		t.Error("RandomSMD accepted zero streams")
	}
	if _, err := (generator.RandomMMD{Streams: 1, Users: 0}).Generate(); err == nil {
		t.Error("RandomMMD accepted zero users")
	}
	if _, err := (generator.CableTV{Channels: 0, Gateways: 1}).Generate(); err == nil {
		t.Error("CableTV accepted zero channels")
	}
	if _, err := (generator.BlockingFamily(1)); err == nil {
		t.Error("BlockingFamily accepted gap < 2")
	}
}

func TestCableTVShape(t *testing.T) {
	in, err := generator.CableTV{Channels: 40, Gateways: 10, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 3 {
		t.Fatalf("M = %d, want 3 (bandwidth, CPU, ports)", in.M())
	}
	if in.MC() != 2 {
		t.Fatalf("MC = %d, want 2 (downlink + revenue cap)", in.MC())
	}
	if in.SupportSize() == 0 {
		t.Fatal("no gateway wants any channel")
	}
	// The revenue-cap measure must have unit skew: load == utility.
	for u := range in.Users {
		usr := &in.Users[u]
		for s := range usr.Utility {
			if usr.Loads[1][s] != usr.Utility[s] {
				t.Fatalf("gateway %d stream %d: revenue load %v != utility %v",
					u, s, usr.Loads[1][s], usr.Utility[s])
			}
		}
	}
}

func TestSmallStreamsSatisfiesHypothesis(t *testing.T) {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 30, Users: 6, M: 2, MC: 1, Seed: 8, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := online.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
		t.Fatalf("small-streams hypothesis violated: %v", err)
	}
}

func TestSmallStreamsRejectsBadHeadroom(t *testing.T) {
	_, err := generator.SmallStreams{
		Base:     generator.RandomMMD{Streams: 4, Users: 2, Seed: 1},
		Headroom: 0.5,
	}.Generate()
	if err == nil {
		t.Fatal("SmallStreams accepted headroom < 1")
	}
}

func TestBlockingFamilyShape(t *testing.T) {
	in, err := generator.BlockingFamily(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumStreams() != 2 || in.NumUsers() != 1 {
		t.Fatalf("dims %d/%d, want 2/1", in.NumStreams(), in.NumUsers())
	}
}

func TestTierString(t *testing.T) {
	if generator.TierSD.String() != "SD" || generator.TierHD.String() != "HD" ||
		generator.TierUHD.String() != "UHD" {
		t.Error("tier names wrong")
	}
	if generator.TierSD.BitrateMbps() >= generator.TierHD.BitrateMbps() ||
		generator.TierHD.BitrateMbps() >= generator.TierUHD.BitrateMbps() {
		t.Error("tier bitrates not increasing")
	}
	if generator.Tier(99).String() == "" {
		t.Error("unknown tier has empty name")
	}
}
