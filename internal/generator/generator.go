// Package generator builds deterministic synthetic MMD workloads: the
// random families used to measure approximation ratios, the cable-TV
// scenario the paper's introduction motivates, the small-streams families
// required by the Section 5 online algorithm, and adversarial families
// (blocking, tightness) used by ablations. All randomness flows through a
// caller-provided seed.
package generator

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mmd"
)

// RandomSMD describes a random single-budget instance family.
type RandomSMD struct {
	// Streams and Users are the instance dimensions.
	Streams, Users int
	// Seed drives all randomness.
	Seed int64
	// Skew is the target local skew alpha (>= 1). With Skew = 1 every
	// user's load equals its utility (the unit-skew case of Section 2).
	Skew float64
	// BudgetFraction is the server budget as a fraction of the total
	// catalog cost (default 0.3). Smaller is more contended.
	BudgetFraction float64
	// CapacityFraction is each user capacity as a fraction of the user's
	// total load over its supported streams (default 0.4).
	CapacityFraction float64
	// Density is the probability a user wants a stream (default 0.5).
	Density float64
}

func (c RandomSMD) withDefaults() RandomSMD {
	if c.Skew < 1 {
		c.Skew = 1
	}
	if c.BudgetFraction == 0 {
		c.BudgetFraction = 0.3
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 0.4
	}
	if c.Density == 0 {
		c.Density = 0.5
	}
	return c
}

// Generate builds the instance.
func (c RandomSMD) Generate() (*mmd.Instance, error) {
	c = c.withDefaults()
	if c.Streams < 1 || c.Users < 1 {
		return nil, fmt.Errorf("generator: need at least one stream and one user; got %d, %d", c.Streams, c.Users)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	in := &mmd.Instance{
		Streams: make([]mmd.Stream, c.Streams),
		Users:   make([]mmd.User, c.Users),
		Budgets: []float64{0},
	}
	totalCost := 0.0
	for s := range in.Streams {
		cost := 0.5 + 1.5*rng.Float64()
		totalCost += cost
		in.Streams[s] = mmd.Stream{Name: fmt.Sprintf("s%d", s), Costs: []float64{cost}}
	}
	in.Budgets[0] = math.Max(c.BudgetFraction*totalCost, maxCost(in, 0))

	for u := range in.Users {
		usr := mmd.User{
			Name:    fmt.Sprintf("u%d", u),
			Utility: make([]float64, c.Streams),
			Loads:   [][]float64{make([]float64, c.Streams)},
		}
		totalLoad := 0.0
		maxLoad := 0.0
		for s := range usr.Utility {
			if rng.Float64() >= c.Density {
				continue
			}
			w := 1 + 9*rng.Float64()
			// Log-uniform ratio in [1, Skew] gives local skew ~ Skew.
			ratio := math.Exp(rng.Float64() * math.Log(c.Skew))
			k := w / ratio
			usr.Utility[s] = w
			usr.Loads[0][s] = k
			totalLoad += k
			if k > maxLoad {
				maxLoad = k
			}
		}
		capacity := math.Max(c.CapacityFraction*totalLoad, maxLoad)
		if totalLoad == 0 {
			capacity = 1
		}
		usr.Capacities = []float64{capacity}
		in.Users[u] = usr
	}
	in.ZeroOverloadedUtilities()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("generator: random SMD: %w", err)
	}
	return in, nil
}

// RandomMMD describes a random multi-budget instance family.
type RandomMMD struct {
	// Streams and Users are the instance dimensions.
	Streams, Users int
	// M is the number of server cost measures; MC the number of capacity
	// measures per user.
	M, MC int
	// Seed drives all randomness.
	Seed int64
	// Skew is the target local skew per user measure (>= 1).
	Skew float64
	// BudgetFraction, CapacityFraction, Density are as in RandomSMD.
	BudgetFraction, CapacityFraction, Density float64
}

func (c RandomMMD) withDefaults() RandomMMD {
	if c.M == 0 {
		c.M = 2
	}
	if c.MC == 0 {
		c.MC = 1
	}
	if c.Skew < 1 {
		c.Skew = 1
	}
	if c.BudgetFraction == 0 {
		c.BudgetFraction = 0.3
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 0.4
	}
	if c.Density == 0 {
		c.Density = 0.5
	}
	return c
}

// Generate builds the instance.
func (c RandomMMD) Generate() (*mmd.Instance, error) {
	c = c.withDefaults()
	if c.Streams < 1 || c.Users < 1 {
		return nil, fmt.Errorf("generator: need at least one stream and one user; got %d, %d", c.Streams, c.Users)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	in := &mmd.Instance{
		Streams: make([]mmd.Stream, c.Streams),
		Users:   make([]mmd.User, c.Users),
		Budgets: make([]float64, c.M),
	}
	totals := make([]float64, c.M)
	for s := range in.Streams {
		costs := make([]float64, c.M)
		for i := range costs {
			costs[i] = 0.5 + 1.5*rng.Float64()
			totals[i] += costs[i]
		}
		in.Streams[s] = mmd.Stream{Name: fmt.Sprintf("s%d", s), Costs: costs}
	}
	for i := range in.Budgets {
		in.Budgets[i] = math.Max(c.BudgetFraction*totals[i], maxCost(in, i))
	}

	for u := range in.Users {
		usr := mmd.User{
			Name:       fmt.Sprintf("u%d", u),
			Utility:    make([]float64, c.Streams),
			Loads:      make([][]float64, c.MC),
			Capacities: make([]float64, c.MC),
		}
		for j := range usr.Loads {
			usr.Loads[j] = make([]float64, c.Streams)
		}
		for s := range usr.Utility {
			if rng.Float64() >= c.Density {
				continue
			}
			usr.Utility[s] = 1 + 9*rng.Float64()
		}
		for j := range usr.Loads {
			totalLoad, maxLoad := 0.0, 0.0
			for s := range usr.Utility {
				if usr.Utility[s] == 0 {
					continue
				}
				ratio := math.Exp(rng.Float64() * math.Log(c.Skew))
				k := usr.Utility[s] / ratio
				usr.Loads[j][s] = k
				totalLoad += k
				if k > maxLoad {
					maxLoad = k
				}
			}
			usr.Capacities[j] = math.Max(c.CapacityFraction*totalLoad, maxLoad)
			if totalLoad == 0 {
				usr.Capacities[j] = 1
			}
		}
		in.Users[u] = usr
	}
	in.ZeroOverloadedUtilities()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("generator: random MMD: %w", err)
	}
	return in, nil
}

// maxCost returns the largest cost in measure i.
func maxCost(in *mmd.Instance, i int) float64 {
	maxC := 0.0
	for s := range in.Streams {
		if c := in.Streams[s].Costs[i]; c > maxC {
			maxC = c
		}
	}
	return maxC
}

// BlockingFamily builds the Section 2.2 adversarial family on which raw
// greedy is arbitrarily bad: a tiny stream with slightly better cost
// effectiveness blocks a huge stream that alone nearly fills the budget.
// gap is the utility ratio between the huge and tiny streams (>= 2).
func BlockingFamily(gap float64) (*mmd.Instance, error) {
	if gap < 2 {
		return nil, fmt.Errorf("generator: blocking family needs gap >= 2; got %v", gap)
	}
	// Budget 1. Tiny stream: cost 1/gap, utility slightly above 1
	// (effectiveness just above gap). Huge stream: cost 1, utility gap
	// (effectiveness exactly gap). Greedy takes the tiny stream first,
	// the huge one no longer fits, and the ratio is ~gap — unbounded in
	// the family parameter.
	delta := 1 / gap
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "tiny", Costs: []float64{delta}},
			{Name: "huge", Costs: []float64{1}},
		},
		Users:   make([]mmd.User, 1),
		Budgets: []float64{1},
	}
	tinyUtility := delta*gap + 1e-6
	in.Users[0] = mmd.User{
		Name:       "u0",
		Utility:    []float64{tinyUtility, gap},
		Loads:      [][]float64{{tinyUtility, gap}},
		Capacities: []float64{tinyUtility + gap},
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("generator: blocking family: %w", err)
	}
	return in, nil
}
