package generator_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/generator"
	"repro/internal/online"
)

// TestWorkloadGeneratorsDeterministic pins the subsystem's core
// contract: every workload generator is a pure function of its seed —
// same seed, byte-identical event sequence; different seed, a
// different one.
func TestWorkloadGeneratorsDeterministic(t *testing.T) {
	cases := []struct {
		name     string
		generate func(seed int64) ([]generator.Event, error)
	}{
		{"zipf-flash", func(seed int64) ([]generator.Event, error) {
			return generator.ZipfFlashCrowd{Tenants: 5, Channels: 12, Gateways: 4, Seed: seed}.Generate()
		}},
		{"diurnal", func(seed int64) ([]generator.Event, error) {
			return generator.Diurnal{Tenants: 3, Channels: 10, Gateways: 4, Seed: seed, Days: 1}.Generate()
		}},
		{"merged", func(seed int64) ([]generator.Event, error) {
			z, err := generator.ZipfFlashCrowd{Tenants: 3, Channels: 9, Gateways: 4, Seed: seed}.Generate()
			if err != nil {
				return nil, err
			}
			d, err := generator.Diurnal{Tenants: 3, Channels: 9, Gateways: 4, Seed: seed + 1, Days: 1}.Generate()
			if err != nil {
				return nil, err
			}
			return generator.Merge(z, d), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.generate(7)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) == 0 {
				t.Fatal("empty schedule")
			}
			b, err := tc.generate(7)
			if err != nil {
				t.Fatal(err)
			}
			// Byte-identical: the rendered sequences match exactly.
			if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
				t.Fatal("same seed produced different schedules")
			}
			c, err := tc.generate(8)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seeds produced identical schedules")
			}
			for i, ev := range a {
				if i > 0 && ev.At < a[i-1].At {
					t.Fatalf("event %d at %v before predecessor at %v", i, ev.At, a[i-1].At)
				}
			}
		})
	}
}

// TestZipfFlashCrowdShape checks the crowd contract E16 leans on: the
// crowd CatalogID appears only in the spike (never in background
// traffic), every crowd tenant offers and departs it exactly once, and
// the schedule drains itself — every offer is matched by a departure.
func TestZipfFlashCrowdShape(t *testing.T) {
	cfg := generator.ZipfFlashCrowd{Tenants: 6, Channels: 12, Gateways: 4, Seed: 11, Rounds: 4}
	events, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	crowd := cfg.CrowdID()
	offers := make(map[string]int) // key: tenant/surface/identity
	crowdOffers, crowdDeparts := 0, 0
	for _, ev := range events {
		var key string
		delta := 0
		switch ev.Type {
		case generator.EventOffer:
			key, delta = fmt.Sprintf("%d/s/%d", ev.Tenant, ev.Stream), 1
		case generator.EventDepart:
			key, delta = fmt.Sprintf("%d/s/%d", ev.Tenant, ev.Stream), -1
		case generator.EventCatalogOffer:
			key, delta = fmt.Sprintf("%d/c/%s", ev.Tenant, ev.CatalogID), 1
			if ev.CatalogID == crowd {
				crowdOffers++
			}
		case generator.EventCatalogDepart:
			key, delta = fmt.Sprintf("%d/c/%s", ev.Tenant, ev.CatalogID), -1
			if ev.CatalogID == crowd {
				crowdDeparts++
			}
		default:
			t.Fatalf("unexpected event type %q in stream-only schedule", ev.Type)
		}
		offers[key] += delta
		if offers[key] < 0 || offers[key] > 1 {
			t.Fatalf("unbalanced holding %q: count %d", key, offers[key])
		}
	}
	wantCrowd := (cfg.Tenants*9 + 9) / 10
	if crowdOffers != wantCrowd || crowdDeparts != wantCrowd {
		t.Fatalf("crowd offers/departs = %d/%d, want %d each", crowdOffers, crowdDeparts, wantCrowd)
	}
	for key, n := range offers {
		if n != 0 {
			t.Fatalf("schedule did not drain: %q left held", key)
		}
	}
}

// TestDiurnalShape checks the churn contract: leave/join pairs are
// presence-consistent per (tenant, gateway), indices stay in range, the
// schedule runs through the sim clock (events span the virtual days),
// and it drains — no stream held and no gateway away at the end.
func TestDiurnalShape(t *testing.T) {
	cfg := generator.Diurnal{Tenants: 4, Channels: 9, Gateways: 5, Seed: 13, Days: 2}
	events, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	held := make(map[string]bool)
	away := make(map[string]bool)
	last := 0.0
	for _, ev := range events {
		if ev.At < last {
			t.Fatalf("time went backwards: %v after %v", ev.At, last)
		}
		last = ev.At
		if ev.Tenant < 0 || ev.Tenant >= cfg.Tenants {
			t.Fatalf("tenant %d out of range", ev.Tenant)
		}
		switch ev.Type {
		case generator.EventOffer, generator.EventDepart:
			if ev.Stream < 0 || ev.Stream >= cfg.Channels {
				t.Fatalf("stream %d out of range", ev.Stream)
			}
			key := fmt.Sprintf("%d/s/%d", ev.Tenant, ev.Stream)
			want := ev.Type == generator.EventDepart
			if held[key] != want {
				t.Fatalf("%s of %q while held=%v", ev.Type, key, held[key])
			}
			held[key] = !want
		case generator.EventCatalogOffer, generator.EventCatalogDepart:
			key := fmt.Sprintf("%d/c/%s", ev.Tenant, ev.CatalogID)
			want := ev.Type == generator.EventCatalogDepart
			if held[key] != want {
				t.Fatalf("%s of %q while held=%v", ev.Type, key, held[key])
			}
			held[key] = !want
		case generator.EventLeave, generator.EventJoin:
			if ev.User < 0 || ev.User >= cfg.Gateways {
				t.Fatalf("user %d out of range", ev.User)
			}
			key := fmt.Sprintf("%d/u/%d", ev.Tenant, ev.User)
			want := ev.Type == generator.EventJoin
			if away[key] != want {
				t.Fatalf("%s of %q while away=%v", ev.Type, key, away[key])
			}
			away[key] = !want
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if last < float64(cfg.Days*24) {
		t.Fatalf("schedule ends at %v, want the full %d virtual hours", last, cfg.Days*24)
	}
	for key, h := range held {
		if h {
			t.Fatalf("stream %q still held at end", key)
		}
	}
	for key, a := range away {
		if a {
			t.Fatalf("gateway %q still away at end", key)
		}
	}
}

// TestLargeStreamsRegimeFlip pins the design that makes E17's sweep
// meaningful: SizeFraction directly controls the small-streams regime
// because online.Normalize preserves cost-to-budget ratios. A small
// fraction passes CheckSmallStreams; a near-budget fraction fails it.
func TestLargeStreamsRegimeFlip(t *testing.T) {
	check := func(fraction float64) error {
		in, err := generator.LargeStreams{Streams: 8, Users: 3, Seed: 17, SizeFraction: fraction}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		norm, err := online.Normalize(in)
		if err != nil {
			t.Fatal(err)
		}
		return online.CheckSmallStreams(norm.Instance, norm.Mu())
	}
	if err := check(0.05); err != nil {
		t.Fatalf("fraction 0.05 should be in-regime: %v", err)
	}
	if check(0.95) == nil {
		t.Fatal("fraction 0.95 should violate the small-streams hypothesis")
	}
}

// TestLargeStreamsDeterministicAndBounded: pure function of the seed,
// and the pinned maximum cost is exactly SizeFraction of the budget.
func TestLargeStreamsDeterministicAndBounded(t *testing.T) {
	cfg := generator.LargeStreams{Streams: 6, Users: 2, Seed: 23, SizeFraction: 0.4}
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different instances")
	}
	maxCost := 0.0
	for _, s := range a.Streams {
		if s.Costs[0] > maxCost {
			maxCost = s.Costs[0]
		}
		if s.Costs[0] < cfg.SizeFraction*(1-0.1)-1e-12 {
			t.Fatalf("stream cost %v fell below the jitter floor", s.Costs[0])
		}
	}
	if maxCost != cfg.SizeFraction {
		t.Fatalf("max cost %v, want exactly %v", maxCost, cfg.SizeFraction)
	}
	if _, err := (generator.LargeStreams{Streams: 2, Users: 1, SizeFraction: 1.5}).Generate(); err == nil {
		t.Fatal("accepted size fraction > 1")
	}
	if _, err := (generator.LargeStreams{Streams: 2, Users: 1, SizeFraction: 0}).Generate(); err == nil {
		t.Fatal("accepted zero size fraction")
	}
}

// TestMergePreservesOrder: Merge sorts by At and keeps input order
// among simultaneous events, so merged schedules are deterministic.
func TestMergePreservesOrder(t *testing.T) {
	a := []generator.Event{
		{At: 0, Tenant: 0, Type: generator.EventOffer, Stream: 1},
		{At: 2, Tenant: 0, Type: generator.EventDepart, Stream: 1},
	}
	b := []generator.Event{
		{At: 0, Tenant: 1, Type: generator.EventOffer, Stream: 2},
		{At: 1, Tenant: 1, Type: generator.EventDepart, Stream: 2},
	}
	got := generator.Merge(a, b)
	want := []generator.Event{a[0], b[0], b[1], a[1]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order wrong:\n got %v\nwant %v", got, want)
	}
}
