package generator

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EventType names one timed workload action. The values deliberately
// match the serving wire vocabulary (streamclient.Event.Type) so
// conversion at the serving layer is a string copy, but the generator
// stays below the serving stack: it imports nothing above the solver
// layer and emits this neutral form only.
type EventType string

// The workload event vocabulary.
const (
	EventOffer         EventType = "offer"
	EventDepart        EventType = "depart"
	EventCatalogOffer  EventType = "catalog-offer"
	EventCatalogDepart EventType = "catalog-depart"
	EventLeave         EventType = "leave"
	EventJoin          EventType = "join"
)

// Event is one timed workload action in wire-neutral form: what happens
// (Type), to whom (Tenant, and Stream/CatalogID/User depending on the
// type), and when in virtual time (At, seconds). A schedule is a slice
// sorted by At with ties broken by construction order — the same
// (time, insertion order) discipline internal/sim runs on — so applying
// it serially is deterministic.
type Event struct {
	// At is the virtual time of the action in seconds.
	At float64
	// Tenant is the target tenant index.
	Tenant int
	// Type selects the action.
	Type EventType
	// Stream is the stream index (offer/depart).
	Stream int
	// CatalogID is the fleet-wide identity (catalog-offer/-depart).
	CatalogID string
	// User is the gateway index (leave/join).
	User int
}

// Merge merges schedules into one, ordered by At; among simultaneous
// events the input order (earlier slice first, then slice order) is
// preserved, so merging is itself deterministic.
func Merge(seqs ...[]Event) []Event {
	var out []Event
	for _, s := range seqs {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ZipfFlashCrowd generates production-shaped catalog traffic: channel
// popularity is Zipf-distributed (a few channels wanted by almost every
// tenant, a long tail by few), held streams expire after a few rounds,
// and one scheduled flash crowd — a live event — makes a single
// CatalogID spike across most of the fleet at once. That spike is the
// SharedOrigin sweet spot and a refcount/eviction stress: the crowd
// channel is excluded from background sampling, so its catalog entry
// has exactly one occupancy cycle (refs 0 → crowd size → 0) and its
// eviction must fire exactly once. The schedule drains itself: every
// offered stream is departed by the end, so a correct registry settles
// at zero references with no external audit.
type ZipfFlashCrowd struct {
	// Tenants and Channels are the fleet dimensions; Gateways bounds
	// the User index space (reserved for merged churn schedules).
	Tenants, Channels, Gateways int
	// Seed drives all randomness.
	Seed int64
	// ZipfS is the popularity exponent (default 1.1).
	ZipfS float64
	// Rounds is the number of background rounds (default 3), one per
	// virtual second.
	Rounds int
	// HoldRounds is how many rounds a background stream is held before
	// its departure is scheduled (default 2).
	HoldRounds int
	// CrowdChannel is the channel that spikes (default 0). Crowd
	// traffic is always catalog traffic, whatever the channel index.
	CrowdChannel int
	// CrowdTenants is how many tenants join the crowd (default 90% of
	// the fleet, at least 2 when the fleet allows).
	CrowdTenants int
	// CrowdAt is the virtual time of the spike (default mid-schedule);
	// the crowd departs together half a second later.
	CrowdAt float64
	// IDFormat renders a channel index as a CatalogID (default
	// "ch-%03d", the catalog.IdentityBindings convention).
	IDFormat string
}

func (c ZipfFlashCrowd) withDefaults() ZipfFlashCrowd {
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.HoldRounds == 0 {
		c.HoldRounds = 2
	}
	if c.CrowdTenants == 0 {
		c.CrowdTenants = (c.Tenants*9 + 9) / 10
		if c.CrowdTenants < 2 && c.Tenants >= 2 {
			c.CrowdTenants = 2
		}
	}
	if c.CrowdAt == 0 {
		c.CrowdAt = float64(c.Rounds)/2 + 0.25
	}
	if c.IDFormat == "" {
		c.IDFormat = "ch-%03d"
	}
	return c
}

// CrowdID returns the CatalogID that spikes — the identity E16's
// refcount and eviction assertions watch.
func (c ZipfFlashCrowd) CrowdID() string {
	c = c.withDefaults()
	return fmt.Sprintf(c.IDFormat, c.CrowdChannel)
}

// channelEvent routes a channel to the catalog surface or the plain
// per-tenant surface — the e15 drill mix: every third channel stays
// tenant-local, the rest are fleet-identified.
func (c ZipfFlashCrowd) channelEvent(tenant, ch int, typ EventType, at float64) Event {
	if ch%3 == 1 {
		return Event{At: at, Tenant: tenant, Type: typ, Stream: ch}
	}
	if typ == EventOffer {
		typ = EventCatalogOffer
	} else {
		typ = EventCatalogDepart
	}
	return Event{At: at, Tenant: tenant, Type: typ, CatalogID: fmt.Sprintf(c.IDFormat, ch)}
}

// Generate builds the schedule. Same seed, same byte-identical event
// sequence: all randomness flows through the seed, and emission order
// (round, then tenant, then channel, ascending) is fixed.
func (c ZipfFlashCrowd) Generate() ([]Event, error) {
	c = c.withDefaults()
	if c.Tenants < 1 || c.Channels < 2 {
		return nil, fmt.Errorf("generator: zipf flash crowd needs >= 1 tenant and >= 2 channels; got %d, %d", c.Tenants, c.Channels)
	}
	if c.CrowdChannel < 0 || c.CrowdChannel >= c.Channels {
		return nil, fmt.Errorf("generator: crowd channel %d out of range [0,%d)", c.CrowdChannel, c.Channels)
	}
	if c.CrowdTenants > c.Tenants {
		return nil, fmt.Errorf("generator: crowd of %d tenants exceeds the fleet of %d", c.CrowdTenants, c.Tenants)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	ranks := rng.Perm(c.Channels)
	prob := make([]float64, c.Channels)
	for s := range prob {
		prob[s] = math.Min(1, 1.6/math.Pow(float64(ranks[s]+1), c.ZipfS))
	}
	crowd := append([]int(nil), rng.Perm(c.Tenants)[:c.CrowdTenants]...)
	sort.Ints(crowd)

	var out []Event
	// held maps (tenant, channel) to the round its departure fires.
	held := make(map[[2]int]int)
	for r := 0; r < c.Rounds; r++ {
		at := float64(r)
		for t := 0; t < c.Tenants; t++ {
			for ch := 0; ch < c.Channels; ch++ {
				key := [2]int{t, ch}
				if exp, ok := held[key]; ok && exp == r {
					out = append(out, c.channelEvent(t, ch, EventDepart, at))
					delete(held, key)
				}
			}
		}
		for t := 0; t < c.Tenants; t++ {
			for ch := 0; ch < c.Channels; ch++ {
				if ch == c.CrowdChannel {
					continue // the crowd owns this channel exclusively
				}
				if rng.Float64() >= prob[ch] {
					continue
				}
				if _, ok := held[[2]int{t, ch}]; ok {
					continue
				}
				out = append(out, c.channelEvent(t, ch, EventOffer, at))
				held[[2]int{t, ch}] = r + c.HoldRounds
			}
		}
	}
	// The flash crowd: every crowd tenant grabs the same CatalogID at
	// once, and the whole crowd departs together — one occupancy cycle.
	id := fmt.Sprintf(c.IDFormat, c.CrowdChannel)
	for _, t := range crowd {
		out = append(out, Event{At: c.CrowdAt, Tenant: t, Type: EventCatalogOffer, CatalogID: id})
	}
	for _, t := range crowd {
		out = append(out, Event{At: c.CrowdAt + 0.5, Tenant: t, Type: EventCatalogDepart, CatalogID: id})
	}
	// Final drain: depart everything still held so the schedule leaves
	// zero references behind.
	drainAt := float64(c.Rounds) + 1
	for t := 0; t < c.Tenants; t++ {
		for ch := 0; ch < c.Channels; ch++ {
			if _, ok := held[[2]int{t, ch}]; ok {
				out = append(out, c.channelEvent(t, ch, EventDepart, drainAt))
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
