package generator

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Diurnal generates day/night churn through internal/sim's virtual
// clock: an hourly tick schedule runs on a sim.Engine, and each tick
// steers every tenant toward an activity target that follows a
// sinusoidal daily curve (peak at 20:00, trough at 08:00). By day,
// tenants offer more streams and offline gateways rejoin; by night,
// streams depart (oldest first) and gateways go offline. Stream and
// gateway identities are sampled from the seeded rng, but all timing
// comes from the engine — events are stamped with engine.Now(), so the
// schedule inherits sim's deterministic (time, FIFO) ordering.
//
// Diurnal owns the leave/join vocabulary in a merged schedule: it
// tracks per-tenant gateway presence so it never leaves an absent user
// or joins a present one, which keeps merged schedules safe to apply
// against the idempotent session API.
type Diurnal struct {
	// Tenants, Channels, Gateways are the fleet dimensions.
	Tenants, Channels, Gateways int
	// Seed drives all randomness.
	Seed int64
	// Days is the number of 24-hour cycles (default 2).
	Days int
	// HourStep is virtual seconds per hour (default 1).
	HourStep float64
	// MaxActive is the peak number of concurrently held streams per
	// tenant (default Channels/2).
	MaxActive int
	// MaxAway is the overnight maximum of offline gateways per tenant
	// (default Gateways/2).
	MaxAway int
	// ExcludeChannel removes one channel from sampling (set it to a
	// flash crowd's channel when merging schedules); -1 or out of
	// range excludes nothing. Note the zero value excludes channel 0.
	ExcludeChannel int
	// IDFormat renders a channel index as a CatalogID (default
	// "ch-%03d").
	IDFormat string
}

func (c Diurnal) withDefaults() Diurnal {
	if c.Days == 0 {
		c.Days = 2
	}
	if c.HourStep == 0 {
		c.HourStep = 1
	}
	if c.MaxActive == 0 {
		c.MaxActive = c.Channels / 2
	}
	if c.MaxAway == 0 {
		c.MaxAway = c.Gateways / 2
	}
	if c.IDFormat == "" {
		c.IDFormat = "ch-%03d"
	}
	return c
}

// activity is the daily curve: 0 at 08:00, 1 at 20:00.
func activity(hour int) float64 {
	return (1 - math.Cos(2*math.Pi*float64(hour%24-8)/24)) / 2
}

// diurnalTenant is the per-tenant churn state the hourly ticks steer.
type diurnalTenant struct {
	active []int // held channels, oldest first
	away   []int // offline gateways, ascending
}

// Generate runs the day/night simulation to completion and returns the
// schedule. Same seed ⇒ byte-identical event sequence.
func (c Diurnal) Generate() ([]Event, error) {
	c = c.withDefaults()
	if c.Tenants < 1 || c.Channels < 1 || c.Gateways < 1 {
		return nil, fmt.Errorf("generator: diurnal needs >= 1 tenant, channel, and gateway; got %d, %d, %d", c.Tenants, c.Channels, c.Gateways)
	}
	if c.MaxActive > c.Channels || c.MaxAway > c.Gateways {
		return nil, fmt.Errorf("generator: diurnal targets exceed fleet dimensions")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	eng := sim.NewEngine()
	tenants := make([]diurnalTenant, c.Tenants)
	var out []Event

	channelOffer := func(t, ch int, at float64) Event {
		if ch%3 == 1 {
			return Event{At: at, Tenant: t, Type: EventOffer, Stream: ch}
		}
		return Event{At: at, Tenant: t, Type: EventCatalogOffer, CatalogID: fmt.Sprintf(c.IDFormat, ch)}
	}
	channelDepart := func(t, ch int, at float64) Event {
		if ch%3 == 1 {
			return Event{At: at, Tenant: t, Type: EventDepart, Stream: ch}
		}
		return Event{At: at, Tenant: t, Type: EventCatalogDepart, CatalogID: fmt.Sprintf(c.IDFormat, ch)}
	}

	tick := func(hour int) {
		at := eng.Now()
		a := activity(hour)
		for t := range tenants {
			st := &tenants[t]
			// Streams follow the activity curve: offer up to the
			// target by day, depart oldest-first by night.
			target := int(math.Round(a * float64(c.MaxActive)))
			for len(st.active) > target {
				ch := st.active[0]
				st.active = st.active[1:]
				out = append(out, channelDepart(t, ch, at))
			}
			if len(st.active) < target {
				heldSet := make(map[int]bool, len(st.active))
				for _, ch := range st.active {
					heldSet[ch] = true
				}
				for _, ch := range rng.Perm(c.Channels) {
					if len(st.active) >= target {
						break
					}
					if ch == c.ExcludeChannel || heldSet[ch] {
						continue
					}
					heldSet[ch] = true
					st.active = append(st.active, ch)
					out = append(out, channelOffer(t, ch, at))
				}
			}
			// Gateways follow the inverse curve: more offline at night.
			targetAway := int(math.Round((1 - a) * float64(c.MaxAway)))
			for len(st.away) > targetAway {
				u := st.away[len(st.away)-1]
				st.away = st.away[:len(st.away)-1]
				out = append(out, Event{At: at, Tenant: t, Type: EventJoin, User: u})
			}
			if len(st.away) < targetAway {
				awaySet := make(map[int]bool, len(st.away))
				for _, u := range st.away {
					awaySet[u] = true
				}
				for _, u := range rng.Perm(c.Gateways) {
					if len(st.away) >= targetAway {
						break
					}
					if awaySet[u] {
						continue
					}
					st.away = append(st.away, u)
					sort.Ints(st.away)
					out = append(out, Event{At: at, Tenant: t, Type: EventLeave, User: u})
				}
			}
		}
	}

	for h := 0; h < c.Days*24; h++ {
		hour := h
		if err := eng.ScheduleAt(float64(hour)*c.HourStep, func() { tick(hour) }); err != nil {
			return nil, fmt.Errorf("generator: diurnal schedule: %w", err)
		}
	}
	// The final tick drains: depart every held stream, rejoin every
	// offline gateway, so the schedule leaves the fleet at rest.
	if err := eng.ScheduleAt(float64(c.Days*24)*c.HourStep, func() {
		at := eng.Now()
		for t := range tenants {
			st := &tenants[t]
			for _, ch := range st.active {
				out = append(out, channelDepart(t, ch, at))
			}
			st.active = nil
			for _, u := range st.away {
				out = append(out, Event{At: at, Tenant: t, Type: EventJoin, User: u})
			}
			st.away = nil
		}
	}); err != nil {
		return nil, fmt.Errorf("generator: diurnal drain: %w", err)
	}
	eng.Run()
	return out, nil
}
