package generator_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestGeneratorPackagePurity is the lint-ish audit from the workload
// subsystem issue: every generator must be a pure function of its seed,
// so the package's non-test sources must not import "time" (the sim
// virtual clock is the only clock) and must not call math/rand's
// global, process-seeded functions — rand may only be used to build
// seeded sources (rand.New, rand.NewSource, rand.NewZipf) and to name
// its types. A violation here is a hidden-state bug even if every
// current test still passes.
func TestGeneratorPackagePurity(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	allowedRand := map[string]bool{
		// Seeded constructors.
		"New": true, "NewSource": true, "NewZipf": true,
		// Type names.
		"Rand": true, "Source": true, "Zipf": true,
	}
	fset := token.NewFileSet()
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked++
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		randAlias := ""
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "time" {
				t.Errorf("%s imports %q: generators must take time from the sim clock, not the wall clock", name, path)
			}
			if path == "math/rand" || path == "math/rand/v2" {
				randAlias = "rand"
				if imp.Name != nil {
					randAlias = imp.Name.Name
				}
			}
		}
		if randAlias == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != randAlias {
				return true
			}
			if !allowedRand[sel.Sel.Name] {
				pos := fset.Position(sel.Pos())
				t.Errorf("%s:%d: %s.%s uses math/rand's global (process-seeded) state; draw from a seeded *rand.Rand instead",
					name, pos.Line, randAlias, sel.Sel.Name)
			}
			return true
		})
	}
	if checked == 0 {
		t.Fatal("no generator sources found — is the test running in the package directory?")
	}
}
