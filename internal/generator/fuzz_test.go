package generator_test

import (
	"reflect"
	"testing"

	"repro/internal/generator"
)

// FuzzGeneratorDeterminism derives workload-generator configs from fuzz
// bytes and asserts the subsystem's core contract twice over: every
// generator is a pure function of its seed (generating twice yields
// DeepEqual schedules/instances), and every schedule honors its shape
// invariants — non-decreasing virtual time, indices in range, the crowd
// CatalogID absent from background traffic, and presence-consistent
// leave/join churn. The seeded-twin structure mirrors
// FuzzFaultSchedule in internal/chaos.
func FuzzGeneratorDeterminism(f *testing.F) {
	f.Add([]byte{3, 10, 4, 7, 2, 1, 50})  // small fleet, mid fraction
	f.Add([]byte{8, 40, 10, 0, 5, 2, 5})  // benchmark-shaped fleet
	f.Add([]byte{1, 2, 1, 255, 0, 0, 99}) // minimal dims, near-budget streams
	f.Add([]byte{6, 12, 4, 33, 3, 1, 20}) // E16-shaped fleet
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			return
		}
		tenants := int(data[0])%8 + 1
		channels := int(data[1])%24 + 2
		gateways := int(data[2])%6 + 1
		seed := int64(data[3]) + int64(data[6])<<8
		rounds := int(data[4])%6 + 1
		days := int(data[5])%2 + 1
		fraction := (float64(data[6]) + 1) / 256 // in (0, 1]

		zcfg := generator.ZipfFlashCrowd{
			Tenants: tenants, Channels: channels, Gateways: gateways,
			Seed: seed, Rounds: rounds,
		}
		z1, err := zcfg.Generate()
		if err != nil {
			t.Fatalf("zipf generate: %v", err)
		}
		z2, err := zcfg.Generate()
		if err != nil {
			t.Fatalf("zipf regenerate: %v", err)
		}
		if !reflect.DeepEqual(z1, z2) {
			t.Fatal("zipf flash crowd is not a pure function of its seed")
		}
		crowd := zcfg.CrowdID()
		crowdSeen := 0
		for i, ev := range z1 {
			if i > 0 && ev.At < z1[i-1].At {
				t.Fatalf("zipf time went backwards at event %d", i)
			}
			if ev.Tenant < 0 || ev.Tenant >= tenants {
				t.Fatalf("zipf tenant %d out of range", ev.Tenant)
			}
			switch ev.Type {
			case generator.EventOffer, generator.EventDepart:
				if ev.Stream < 0 || ev.Stream >= channels {
					t.Fatalf("zipf stream %d out of range", ev.Stream)
				}
			case generator.EventCatalogOffer:
				if ev.CatalogID == crowd {
					crowdSeen++
				}
			case generator.EventCatalogDepart:
			default:
				t.Fatalf("zipf emitted churn event %q", ev.Type)
			}
		}
		wantCrowd := (tenants*9 + 9) / 10
		if wantCrowd < 2 && tenants >= 2 {
			wantCrowd = 2
		}
		if crowdSeen != wantCrowd {
			t.Fatalf("crowd ID offered %d times, want %d (background traffic must exclude it)", crowdSeen, wantCrowd)
		}

		dcfg := generator.Diurnal{
			Tenants: tenants, Channels: channels, Gateways: gateways,
			Seed: seed + 1, Days: days,
		}
		d1, err := dcfg.Generate()
		if err != nil {
			t.Fatalf("diurnal generate: %v", err)
		}
		d2, err := dcfg.Generate()
		if err != nil {
			t.Fatalf("diurnal regenerate: %v", err)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatal("diurnal is not a pure function of its seed")
		}
		away := make(map[[2]int]bool)
		for i, ev := range d1 {
			if i > 0 && ev.At < d1[i-1].At {
				t.Fatalf("diurnal time went backwards at event %d", i)
			}
			switch ev.Type {
			case generator.EventLeave:
				key := [2]int{ev.Tenant, ev.User}
				if away[key] {
					t.Fatalf("leave of already-absent gateway %v", key)
				}
				away[key] = true
			case generator.EventJoin:
				key := [2]int{ev.Tenant, ev.User}
				if !away[key] {
					t.Fatalf("join of already-present gateway %v", key)
				}
				away[key] = false
			}
		}
		for key, a := range away {
			if a {
				t.Fatalf("gateway %v left absent at end of schedule", key)
			}
		}

		lcfg := generator.LargeStreams{
			Streams: channels%10 + 1, Users: tenants,
			Seed: seed + 2, SizeFraction: fraction,
		}
		in1, err := lcfg.Generate()
		if err != nil {
			t.Fatalf("large streams generate: %v", err)
		}
		in2, err := lcfg.Generate()
		if err != nil {
			t.Fatalf("large streams regenerate: %v", err)
		}
		if !reflect.DeepEqual(in1, in2) {
			t.Fatal("large streams is not a pure function of its seed")
		}
		if err := in1.Validate(); err != nil {
			t.Fatalf("large streams produced invalid instance: %v", err)
		}
		for s, st := range in1.Streams {
			if st.Costs[0] > fraction*in1.Budgets[0]+1e-12 {
				t.Fatalf("stream %d cost %v exceeds the size-fraction ceiling %v", s, st.Costs[0], fraction)
			}
		}
	})
}
