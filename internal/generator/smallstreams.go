package generator

import (
	"fmt"
	"math"

	"repro/internal/mmd"
	"repro/internal/online"
)

// SmallStreams builds a random MMD instance satisfying the Section 5
// hypothesis: after global-skew normalization, every stream costs at most
// B_i/log2(mu) in every server measure and at most K^u_j/log2(mu) in
// every user measure. It generates a RandomMMD instance and then raises
// budgets and capacities until online.CheckSmallStreams passes on the
// normalized copy (raising a budget only relaxes the instance, so
// validity is preserved).
type SmallStreams struct {
	// Base is the underlying random family.
	Base RandomMMD
	// Headroom multiplies the minimal compliant budgets (default 1.2).
	Headroom float64
}

// Generate builds the instance.
func (c SmallStreams) Generate() (*mmd.Instance, error) {
	headroom := c.Headroom
	if headroom == 0 {
		headroom = 1.2
	}
	if headroom < 1 {
		return nil, fmt.Errorf("generator: small streams headroom must be >= 1; got %v", headroom)
	}
	in, err := c.Base.Generate()
	if err != nil {
		return nil, err
	}

	// Iterate: normalization changes gamma only through cost scaling,
	// which budget raises do not affect, so one or two rounds suffice;
	// the loop guards against pathological interactions.
	for round := 0; round < 8; round++ {
		norm, err := online.Normalize(in)
		if err != nil {
			return nil, fmt.Errorf("generator: small streams: %w", err)
		}
		mu := norm.Mu()
		if online.CheckSmallStreams(norm.Instance, mu) == nil {
			return in, nil
		}
		logMu := math.Log2(mu)
		// Raise each budget/capacity to headroom * logMu * (largest
		// cost in the measure). Ratios c_i(S)/B_i are scale-invariant
		// between the original and normalized instances, so fixing the
		// original fixes the normalized copy.
		for i := range in.Budgets {
			if need := headroom * logMu * maxCost(in, i); in.Budgets[i] < need {
				in.Budgets[i] = need
			}
		}
		for u := range in.Users {
			usr := &in.Users[u]
			for j := range usr.Loads {
				maxLoad := 0.0
				for s, k := range usr.Loads[j] {
					if usr.Utility[s] > 0 && k > maxLoad {
						maxLoad = k
					}
				}
				if need := headroom * logMu * maxLoad; usr.Capacities[j] < need {
					usr.Capacities[j] = need
				}
			}
		}
	}
	return nil, fmt.Errorf("generator: small streams: did not converge")
}
