package generator

import (
	"fmt"
	"math/rand"

	"repro/internal/mmd"
)

// LargeStreams generates adversarial MMD instances whose streams are
// sized as a controlled fraction of the server budget — the knob the
// Section 5 small-streams assumption turns on. The instance has one
// server measure with budget 1 and every stream costs about
// SizeFraction, with the first stream pinned to exactly SizeFraction so
// the largest cost-to-budget ratio is known. online.Normalize scales
// each cost row and its budget by the same ratio, so that ratio is
// scale-invariant: the instance is in-regime iff
// SizeFraction <= 1/log2(mu). Sweeping SizeFraction from small to near
// 1 walks the allocator from well inside the proven guarantee to an
// outright violation of its hypothesis, which is exactly the sweep E17
// measures. User capacities are kept ample so only the server-side
// hypothesis is ever at stake.
type LargeStreams struct {
	// Streams and Users are the instance dimensions.
	Streams, Users int
	// Seed drives all randomness.
	Seed int64
	// SizeFraction in (0, 1] is the cost of the largest stream as a
	// fraction of the server budget.
	SizeFraction float64
	// Jitter in [0, 1) shrinks the other streams by up to this factor
	// below SizeFraction (default 0.1), keeping every stream "large".
	Jitter float64
	// Density is the probability a user wants a stream (default 0.8).
	Density float64
	// CapacityFactor scales per-user capacity above the user's total
	// possible load (default 4), so user measures never bind.
	CapacityFactor float64
}

func (c LargeStreams) withDefaults() LargeStreams {
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Density == 0 {
		c.Density = 0.8
	}
	if c.CapacityFactor == 0 {
		c.CapacityFactor = 4
	}
	return c
}

// Generate builds the instance. Same seed ⇒ identical instance.
func (c LargeStreams) Generate() (*mmd.Instance, error) {
	c = c.withDefaults()
	if c.Streams < 1 || c.Users < 1 {
		return nil, fmt.Errorf("generator: large streams needs >= 1 stream and user; got %d, %d", c.Streams, c.Users)
	}
	if c.SizeFraction <= 0 || c.SizeFraction > 1 {
		return nil, fmt.Errorf("generator: size fraction %v outside (0, 1]", c.SizeFraction)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return nil, fmt.Errorf("generator: jitter %v outside [0, 1)", c.Jitter)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	in := &mmd.Instance{Budgets: []float64{1}}
	for s := 0; s < c.Streams; s++ {
		cost := c.SizeFraction
		if s > 0 {
			// Jitter strictly downward: SizeFraction stays the max.
			cost *= 1 - c.Jitter*rng.Float64()
		}
		in.Streams = append(in.Streams, mmd.Stream{
			Name:  fmt.Sprintf("big-%02d", s),
			Costs: []float64{cost},
		})
	}
	for u := 0; u < c.Users; u++ {
		user := mmd.User{
			Name:    fmt.Sprintf("gw-%02d", u),
			Utility: make([]float64, c.Streams),
			Loads:   [][]float64{make([]float64, c.Streams)},
		}
		total := 0.0
		for s := 0; s < c.Streams; s++ {
			w := 1 + rng.Float64()
			keep := rng.Float64() < c.Density
			// The first user always wants the first (largest) stream,
			// so the instance is never vacuously empty and the pinned
			// maximum cost always matters.
			if u == 0 && s == 0 {
				keep = true
			}
			if !keep {
				continue
			}
			user.Utility[s] = w
			user.Loads[0][s] = w // unit skew: load mirrors utility
			total += w
		}
		capacity := c.CapacityFactor * total
		if capacity == 0 {
			capacity = 1
		}
		user.Capacities = []float64{capacity}
		in.Users = append(in.Users, user)
	}
	in.ZeroOverloadedUtilities()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("generator: large streams produced invalid instance: %w", err)
	}
	return in, nil
}
