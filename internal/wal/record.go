// Package wal is the durability layer: per-shard append-only event
// logs (write-ahead logs), checkpoint manifests, and the reader that
// recovery and live resharding replay from.
//
// # One codec
//
// A Record is the single JSON-Lines event schema of the repository —
// the same codec backs the cluster's durability log and the
// internal/trace simulation traces (trace.Event is a view over the
// shared field set), so there are not two NDJSON event formats
// drifting apart. Encoding is a hand-rolled appender in the style of
// the internal/httpserve streaming codec (zero allocations beyond the
// caller's buffer); decoding is strict (unknown fields are errors —
// a corrupt log must fail loudly, never reinterpret).
//
// # Log layout and ordering
//
// A Log is one directory. Each writer — one per shard worker, plus one
// for the catalog registry — owns an append-only segment file per
// checkpoint generation (`seg-<gen>-<name>.ndjson`); a checkpoint
// seals the current generation's segments and writes a manifest
// (`ckpt-<gen>.json`) carrying the quiesced fleet's rendered state as
// a recovery-time verification artifact. Records carry a global
// sequence number assigned at apply time, so a reader can merge every
// segment back into one total order that preserves each tenant's (and
// the registry's) apply order regardless of how many shards wrote the
// log — which is exactly what lets recovery replay into a *different*
// shard count (live resharding).
//
// # Torn tails
//
// Only the final line of a writer's last segment may be torn (a crash
// mid-write); the reader tolerates it and recovery truncates it. A
// malformed line anywhere else — mid-file, or a terminated-but-invalid
// final line — is a hard error: the log is never silently skipped
// over. FuzzWALReplay pins the parser against both rules.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// Record types. The vocabulary is the union of the cluster's routed
// events, the catalog registry's admission protocol, and the
// simulation trace events internal/trace has always written — one
// codec for all of them.
const (
	// TypeStreamArrival .. TypeResolve are the cluster's routed events
	// (the first four double as the classic trace vocabulary).
	TypeStreamArrival   = "stream_arrival"
	TypeStreamDeparture = "stream_departure"
	TypeUserJoin        = "user_join"
	TypeUserLeave       = "user_leave"
	TypeResolve         = "resolve"
	// TypeDecision is the simulation trace's admission-decision record.
	TypeDecision = "decision"
	// TypeCatalogAcquire and TypeCatalogSettle are the registry's log
	// plane: one record per admission quote and per reference
	// transition, in the registry owner's serialization order.
	TypeCatalogAcquire = "catalog_acquire"
	TypeCatalogSettle  = "catalog_settle"
)

// Settle op tokens (Record.Op on a TypeCatalogSettle record), matching
// catalog's settlement operations.
const (
	OpCommit         = "commit"
	OpRecharge       = "recharge"
	OpRelease        = "release"
	OpReleasePending = "release_pending"
	OpAdopt          = "adopt"
)

// Record is one logged event. Zero-valued fields are omitted on the
// wire; which fields are meaningful depends on Type. Seq is the global
// apply-order sequence number (0 on trace records, which are ordered
// by Time instead).
type Record struct {
	Seq     uint64  `json:"seq,omitempty"`
	Type    string  `json:"type"`
	Tenant  int     `json:"tenant,omitempty"`
	Stream  int     `json:"stream,omitempty"`
	User    int     `json:"user,omitempty"`
	Install bool    `json:"install,omitempty"`
	Catalog string  `json:"catalog,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Origin  bool    `json:"origin,omitempty"`
	// Sess and CSeq tie a routed event to a resumable ingestion
	// session: the client-chosen session id and the client-assigned
	// per-session sequence number (exactly-once resume — recovery
	// rebuilds each session's dedup watermark as max CSeq per Sess).
	// They never affect how the event applies.
	Sess    string  `json:"sess,omitempty"`
	CSeq    uint64  `json:"cseq,omitempty"`
	Op      string  `json:"op,omitempty"`
	Full    float64 `json:"full,omitempty"`
	Charged float64 `json:"charged,omitempty"`
	// Trace-plane fields (see internal/trace).
	Time  float64 `json:"time,omitempty"`
	Users []int   `json:"users,omitempty"`
	Value float64 `json:"value,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// AppendRecord appends r as one JSON line (newline-terminated) to b
// and returns the extended buffer. It is the allocation-free encode
// path shared by the shard workers' log appenders and trace.Writer;
// output decodes exactly (floats use the shortest round-trip form).
func AppendRecord(b []byte, r *Record) []byte {
	b = append(b, '{')
	if r.Seq != 0 {
		b = append(b, `"seq":`...)
		b = strconv.AppendUint(b, r.Seq, 10)
		b = append(b, ',')
	}
	b = append(b, `"type":`...)
	b = appendJSONString(b, r.Type)
	if r.Tenant != 0 {
		b = append(b, `,"tenant":`...)
		b = strconv.AppendInt(b, int64(r.Tenant), 10)
	}
	if r.Stream != 0 {
		b = append(b, `,"stream":`...)
		b = strconv.AppendInt(b, int64(r.Stream), 10)
	}
	if r.User != 0 {
		b = append(b, `,"user":`...)
		b = strconv.AppendInt(b, int64(r.User), 10)
	}
	if r.Install {
		b = append(b, `,"install":true`...)
	}
	if r.Catalog != "" {
		b = append(b, `,"catalog":`...)
		b = appendJSONString(b, r.Catalog)
	}
	if r.Scale != 0 {
		b = append(b, `,"scale":`...)
		b = strconv.AppendFloat(b, r.Scale, 'g', -1, 64)
	}
	if r.Origin {
		b = append(b, `,"origin":true`...)
	}
	if r.Sess != "" {
		b = append(b, `,"sess":`...)
		b = appendJSONString(b, r.Sess)
	}
	if r.CSeq != 0 {
		b = append(b, `,"cseq":`...)
		b = strconv.AppendUint(b, r.CSeq, 10)
	}
	if r.Op != "" {
		b = append(b, `,"op":`...)
		b = appendJSONString(b, r.Op)
	}
	if r.Full != 0 {
		b = append(b, `,"full":`...)
		b = strconv.AppendFloat(b, r.Full, 'g', -1, 64)
	}
	if r.Charged != 0 {
		b = append(b, `,"charged":`...)
		b = strconv.AppendFloat(b, r.Charged, 'g', -1, 64)
	}
	if r.Time != 0 {
		b = append(b, `,"time":`...)
		b = strconv.AppendFloat(b, r.Time, 'g', -1, 64)
	}
	if r.Users != nil {
		b = append(b, `,"users":[`...)
		for i, u := range r.Users {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(u), 10)
		}
		b = append(b, ']')
	}
	if r.Value != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendFloat(b, r.Value, 'g', -1, 64)
	}
	if r.Note != "" {
		b = append(b, `,"note":`...)
		b = appendJSONString(b, r.Note)
	}
	return append(b, '}', '\n')
}

// appendJSONString appends s as a JSON string literal. The common case
// (no character needing escape) is a straight copy; anything else
// falls back to encoding/json for exact escaping.
func appendJSONString(b []byte, s string) []byte {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			clean = false
			break
		}
	}
	if clean {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	esc, _ := json.Marshal(s)
	return append(b, esc...)
}

// DecodeRecord parses one JSON line into a Record. It is strict: an
// unknown field, trailing data after the object, or a missing type are
// all errors — a durability log is never reinterpreted loosely.
func DecodeRecord(line []byte) (Record, error) {
	var r Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Record{}, fmt.Errorf("wal: decode record: %w", err)
	}
	if dec.More() {
		return Record{}, fmt.Errorf("wal: decode record: trailing data after object")
	}
	if r.Type == "" {
		return Record{}, fmt.Errorf("wal: decode record: missing type")
	}
	return r, nil
}
