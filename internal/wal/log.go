package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures a Log.
type Options struct {
	// Dir is the log directory (created if absent).
	Dir string
	// Sync is the durability policy every appender runs under.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval
	// (default 50ms).
	SyncInterval time.Duration
	// FS opens segment files. Nil means the real filesystem (OSFS);
	// tests inject fault-scripted filesystems here (internal/chaos).
	FS FS
}

// Manifest is one checkpoint: written at a quiesced barrier, it fences
// the log (every record with Seq <= Seq is in generations <= Gen) and
// carries the fleet's rendered state at the fence as a recovery-time
// verification artifact. Recovery replays up to the fence, renders,
// and compares — a divergence is corruption and fails loudly.
//
// A manifest does not permit truncating history: tenant policy state
// is an order-sensitive accumulation (by design — see ARCHITECTURE.md),
// so recovery always replays from genesis and uses manifests as
// verification waypoints and segment-rotation points.
type Manifest struct {
	// Gen is the generation this manifest seals.
	Gen int `json:"gen"`
	// Seq is the fence: the global sequence number at the quiesced
	// barrier.
	Seq uint64 `json:"seq"`
	// Shards is the shard count writing the *next* generation (it
	// changes across a reshard checkpoint).
	Shards int `json:"shards"`
	// Tenants is the tenant count (a recovery sanity check).
	Tenants int `json:"tenants"`
	// Reason records why the checkpoint was taken ("checkpoint",
	// "reshard", "recovered", "close").
	Reason string `json:"reason"`
	// TenantsRender and CatalogRender are the quiesced fleet state:
	// FleetSnapshot.RenderTenants() and the catalog render ("" with no
	// catalog). Byte-compared by recovery verification.
	TenantsRender string `json:"tenants_render"`
	CatalogRender string `json:"catalog_render,omitempty"`
}

// Replay is everything a reader needs to rebuild the fleet.
type Replay struct {
	// Records holds every record in the log, sorted by Seq — the global
	// apply order. Per-tenant and registry orders are subsequences.
	Records []Record
	// Manifests holds every checkpoint manifest in generation order.
	Manifests []Manifest
	// MaxSeq is the highest sequence number seen.
	MaxSeq uint64
	// Truncated maps segment files to the byte offset their torn tail
	// was truncated at (recovery mode only).
	Truncated map[string]int64
}

// LastManifest returns the newest checkpoint manifest, or nil.
func (r *Replay) LastManifest() *Manifest {
	if len(r.Manifests) == 0 {
		return nil
	}
	return &r.Manifests[len(r.Manifests)-1]
}

// A Log is one durability directory: segment files per (generation,
// writer) plus checkpoint manifests. Open loads the directory state;
// Begin (or Rotate) opens the active generation's appenders. All
// methods except Appender handles are for the cluster's control plane
// (recovery, checkpoint, reshard), not the hot path.
type Log struct {
	opts Options

	mu        sync.Mutex
	gen       int // active generation (0 = no active appenders yet)
	lastGen   int // highest generation present on disk
	appenders map[string]*Appender
	flusher   *flusher // shared commit-flush rounds (SyncBatch)
	syncStop  chan struct{}
	syncDone  chan struct{}
}

// Open loads (or creates) a log directory. No appenders are active
// until Begin or Rotate; ReadAll may be called first to replay
// existing state.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty dir")
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, appenders: make(map[string]*Appender)}
	segs, mans, err := l.scan()
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if s.gen > l.lastGen {
			l.lastGen = s.gen
		}
	}
	for _, m := range mans {
		if m.gen > l.lastGen {
			l.lastGen = m.gen
		}
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Sync returns the configured durability policy.
func (l *Log) Sync() SyncPolicy { return l.opts.Sync }

// Empty reports whether the directory holds no segments or manifests.
func (l *Log) Empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastGen == 0 && l.gen == 0
}

type segFile struct {
	gen  int
	name string // writer name
	path string
}

type manFile struct {
	gen  int
	path string
}

// scan indexes the directory's segment and manifest files.
func (l *Log) scan() ([]segFile, []manFile, error) {
	ents, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segFile
	var mans []manFile
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".ndjson"):
			body := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".ndjson")
			gen, writer, ok := strings.Cut(body, "-")
			g, err := parseGen(gen)
			if !ok || err != nil || writer == "" {
				return nil, nil, fmt.Errorf("wal: unrecognized segment file %q", name)
			}
			segs = append(segs, segFile{gen: g, name: writer, path: filepath.Join(l.opts.Dir, name)})
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".json"):
			body := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".json")
			g, err := parseGen(body)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: unrecognized manifest file %q", name)
			}
			mans = append(mans, manFile{gen: g, path: filepath.Join(l.opts.Dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].gen != segs[j].gen {
			return segs[i].gen < segs[j].gen
		}
		return segs[i].name < segs[j].name
	})
	sort.Slice(mans, func(i, j int) bool { return mans[i].gen < mans[j].gen })
	return segs, mans, nil
}

// parseGen parses a segment/manifest generation token: digits only,
// fully consumed, positive. (A scanf width would silently truncate a
// 7-digit generation to its first 6, colliding with an earlier one.)
func parseGen(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("wal: bad generation %q", s)
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("wal: bad generation %q", s)
		}
	}
	g, err := strconv.Atoi(s)
	if err != nil || g <= 0 {
		return 0, fmt.Errorf("wal: bad generation %q", s)
	}
	return g, nil
}

// ReadAll parses every segment and manifest into one seq-ordered
// Replay. With truncate true (recovery from a crash), a torn final
// line in a writer's newest segment is physically truncated away; with
// truncate false (a live bulk read during resharding), an unterminated
// tail is simply not returned yet — the writer is still appending.
// A torn tail anywhere but a writer's newest segment, or a malformed
// line mid-file, is a hard error either way.
func (l *Log) ReadAll(truncate bool) (*Replay, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, mans, err := l.scan()
	if err != nil {
		return nil, err
	}
	// Newest segment per writer: the only place a torn tail is legal.
	newest := make(map[string]int)
	for _, s := range segs {
		if s.gen > newest[s.name] {
			newest[s.name] = s.gen
		}
	}
	out := &Replay{Truncated: make(map[string]int64)}
	for _, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		sd, err := parseSegment(data)
		if err != nil {
			return nil, fmt.Errorf("wal: %s: %w", filepath.Base(s.path), err)
		}
		if sd.tornAt >= 0 {
			if s.gen != newest[s.name] {
				return nil, fmt.Errorf("wal: %s: torn tail in a sealed (non-final) segment", filepath.Base(s.path))
			}
			if truncate {
				if err := os.Truncate(s.path, sd.tornAt); err != nil {
					return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
				out.Truncated[filepath.Base(s.path)] = sd.tornAt
			}
		}
		out.Records = append(out.Records, sd.records...)
	}
	sort.SliceStable(out.Records, func(i, j int) bool { return out.Records[i].Seq < out.Records[j].Seq })
	for _, r := range out.Records {
		if r.Seq > out.MaxSeq {
			out.MaxSeq = r.Seq
		}
	}
	for _, m := range mans {
		data, err := os.ReadFile(m.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			return nil, fmt.Errorf("wal: %s: %w", filepath.Base(m.path), err)
		}
		out.Manifests = append(out.Manifests, man)
	}
	return out, nil
}

// Begin opens the next generation's appenders, one per writer name.
// Called once after Open (fresh log) or after recovery replay; Rotate
// is the checkpoint path that seals and reopens in one step.
func (l *Log) Begin(names []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.beginLocked(names)
}

func (l *Log) beginLocked(names []string) error {
	if l.gen != 0 {
		return fmt.Errorf("wal: appenders already active (gen %d)", l.gen)
	}
	gen := l.lastGen + 1
	if l.opts.Sync == SyncBatch && l.flusher == nil {
		l.flusher = newFlusher()
	}
	for _, name := range names {
		path := filepath.Join(l.opts.Dir, fmt.Sprintf("seg-%06d-%s.ndjson", gen, name))
		f, err := l.opts.FS.OpenSegment(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		a := &Appender{name: name, f: f, fl: l.flusher, sync: l.opts.Sync}
		// Pay the first chunk's zero-fill now, at open, so the first
		// group commit already runs metadata-free (see preallocChunk).
		a.mu.Lock()
		a.preallocLocked(1)
		a.mu.Unlock()
		if a.err != nil {
			return a.err
		}
		l.appenders[name] = a
	}
	l.gen, l.lastGen = gen, gen
	if l.opts.Sync == SyncInterval && l.syncStop == nil {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop(l.syncStop, l.syncDone)
	}
	return nil
}

// Appender returns the active appender for a writer name (nil when the
// generation has no such writer).
func (l *Log) Appender(name string) *Appender {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appenders[name]
}

// FlushAll drains every active appender's buffer to the kernel, so a
// concurrent ReadAll(false) observes everything appended so far (the
// resharding bulk read).
func (l *Log) FlushAll() error {
	l.mu.Lock()
	apps := l.active()
	l.mu.Unlock()
	var first error
	for _, a := range apps {
		if err := a.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (l *Log) active() []*Appender {
	out := make([]*Appender, 0, len(l.appenders))
	for _, a := range l.appenders {
		out = append(out, a)
	}
	return out
}

// Rotate is the checkpoint step, called only at a quiesced barrier (no
// writer is appending): it seals the active generation's segments,
// writes the manifest for it (filling m.Gen), and opens the next
// generation for the given writer names (which may differ from the
// previous generation's — a reshard changes the shard count).
func (l *Log) Rotate(m *Manifest, names []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen == 0 {
		return fmt.Errorf("wal: no active generation to rotate")
	}
	var first error
	for _, a := range l.appenders {
		if err := a.seal(); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	m.Gen = l.gen
	if err := l.writeManifestLocked(*m); err != nil {
		return err
	}
	l.appenders = make(map[string]*Appender)
	l.gen = 0
	return l.beginLocked(names)
}

func (l *Log) writeManifestLocked(m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("ckpt-%06d.json", m.Gen))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return nil
}

// Close seals the active generation (flush + fsync + close) and writes
// a closing manifest when one is supplied. Idempotent.
func (l *Log) Close(m *Manifest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.syncStop != nil {
		close(l.syncStop)
		<-l.syncDone
		l.syncStop, l.syncDone = nil, nil
	}
	if l.flusher != nil {
		// Committers are drained before the log closes, so no Flush is
		// in flight; stop the round loop before sealing.
		l.flusher.Close()
		l.flusher = nil
	}
	var first error
	for _, a := range l.appenders {
		if err := a.seal(); err != nil && first == nil {
			first = err
		}
	}
	if l.gen != 0 && m != nil && first == nil {
		m.Gen = l.gen
		first = l.writeManifestLocked(*m)
	}
	l.appenders = make(map[string]*Appender)
	l.gen = 0
	return first
}

// syncLoop is the SyncInterval background syncer.
func (l *Log) syncLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			l.mu.Lock()
			apps := l.active()
			l.mu.Unlock()
			for _, a := range apps {
				_ = a.flushAndSync()
			}
		}
	}
}

// ShardWriter returns the canonical writer name for shard s.
func ShardWriter(s int) string { return fmt.Sprintf("s%d", s) }

// CatalogWriter is the registry's writer name.
const CatalogWriter = "catalog"

// ShardWriters returns the writer-name set for n shards plus the
// catalog plane (withCatalog).
func ShardWriters(n int, withCatalog bool) []string {
	names := make([]string, 0, n+1)
	for s := 0; s < n; s++ {
		names = append(names, ShardWriter(s))
	}
	if withCatalog {
		names = append(names, CatalogWriter)
	}
	return names
}
