package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Type: TypeStreamArrival, Tenant: 3, Stream: 17},
		{Seq: 2, Type: TypeStreamDeparture, Tenant: 0, Stream: 0},
		{Seq: 3, Type: TypeUserLeave, Tenant: 1, User: 9},
		{Seq: 4, Type: TypeUserJoin, User: 2},
		{Seq: 5, Type: TypeResolve, Tenant: 2, Install: true},
		{Seq: 6, Type: TypeStreamArrival, Tenant: 1, Stream: 4,
			Catalog: "news/\"intl\"\n", Scale: 0.3333333333333333, Origin: true},
		{Seq: 7, Type: TypeCatalogAcquire, Tenant: 5, Catalog: "sports", Scale: 1},
		{Seq: 8, Type: TypeCatalogSettle, Tenant: 5, Catalog: "sports",
			Op: OpCommit, Full: 12.75, Charged: 4.25, Origin: true},
		{Seq: 9, Type: TypeCatalogSettle, Op: OpReleasePending, Catalog: "x"},
		{Type: TypeDecision, Time: 0.1, Stream: 2, Users: []int{0, 3, 5}, Value: 1.5, Note: "admit"},
		{Type: TypeDecision, Time: math.Pi, Users: []int{}, Value: -2.25},
		{Seq: math.MaxUint64, Type: TypeResolve},
	}
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf[:0], &recs[i])
		if buf[len(buf)-1] != '\n' {
			t.Fatalf("record %d: not newline-terminated: %q", i, buf)
		}
		got, err := DecodeRecord(buf[:len(buf)-1])
		if err != nil {
			t.Fatalf("record %d: decode: %v (line %q)", i, err, buf)
		}
		// Users round-trips nil-vs-empty as written ([] encodes as []).
		want := recs[i]
		if want.Users != nil && len(want.Users) == 0 {
			want.Users, got.Users = nil, got.Users[:0]
			if len(got.Users) != 0 {
				t.Fatalf("record %d: users not empty", i)
			}
			got.Users = nil
		}
		if !recordsEqual(got, want) {
			t.Fatalf("record %d: round trip mismatch:\n got %+v\nwant %+v\nline %q", i, got, want, buf)
		}
	}
}

func recordsEqual(a, b Record) bool {
	if len(a.Users) != len(b.Users) {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			return false
		}
	}
	a.Users, b.Users = nil, nil
	return reflect.DeepEqual(a, b)
}

func TestDecodeRecordStrict(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"unknown field", `{"type":"resolve","bogus":1}`},
		{"trailing data", `{"type":"resolve"}{"type":"resolve"}`},
		{"missing type", `{"seq":4}`},
		{"not json", `seq=4`},
		{"empty", ``},
	}
	for _, tc := range cases {
		if _, err := DecodeRecord([]byte(tc.line)); err == nil {
			t.Errorf("%s: DecodeRecord(%q) succeeded, want error", tc.name, tc.line)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"none", SyncNone}, {"interval", SyncInterval}, {"batch", SyncBatch}, {"", SyncBatch}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("SyncPolicy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Error("ParseSyncPolicy(\"always\") succeeded, want error")
	}
}

// TestLogAppendReadAll pins the merge contract: records written by
// several writers across several generations come back as one sequence
// in Seq order, with manifests in generation order.
func TestLogAppendReadAll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Empty() {
		t.Fatal("fresh directory not Empty")
	}
	names := ShardWriters(2, true)
	if err := l.Begin(names); err != nil {
		t.Fatal(err)
	}
	// Interleave across writers: seq order disagrees with per-file order.
	app0, app1, cat := l.Appender(ShardWriter(0)), l.Appender(ShardWriter(1)), l.Appender(CatalogWriter)
	for _, w := range []struct {
		app *Appender
		seq uint64
	}{{app0, 2}, {app1, 1}, {cat, 3}, {app0, 5}, {app1, 4}} {
		if err := w.app.Append(&Record{Seq: w.seq, Type: TypeResolve, Tenant: int(w.seq)}); err != nil {
			t.Fatal(err)
		}
	}
	m := Manifest{Seq: 5, Shards: 2, Tenants: 6, Reason: "checkpoint", TenantsRender: "state-at-5"}
	if err := l.Rotate(&m, names); err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 {
		t.Fatalf("first rotation sealed gen %d, want 1", m.Gen)
	}
	if err := l.Appender(ShardWriter(1)).Append(&Record{Seq: 6, Type: TypeResolve, Tenant: 6}); err != nil {
		t.Fatal(err)
	}
	closing := Manifest{Seq: 6, Shards: 2, Tenants: 7, Reason: "close", TenantsRender: "state-at-6"}
	if err := l.Close(&closing); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Empty() {
		t.Fatal("reopened log reports Empty")
	}
	rep, err := l2.ReadAll(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxSeq != 6 || len(rep.Records) != 6 {
		t.Fatalf("got MaxSeq %d, %d records; want 6, 6", rep.MaxSeq, len(rep.Records))
	}
	for i, r := range rep.Records {
		if r.Seq != uint64(i+1) || r.Tenant != i+1 {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
	if len(rep.Manifests) != 2 {
		t.Fatalf("got %d manifests, want 2", len(rep.Manifests))
	}
	if got := rep.LastManifest(); got.Gen != 2 || got.Seq != 6 || got.Reason != "close" || got.TenantsRender != "state-at-6" {
		t.Fatalf("last manifest: %+v", got)
	}
	if rep.Manifests[0].TenantsRender != "state-at-5" {
		t.Fatalf("first manifest render: %+v", rep.Manifests[0])
	}
	if len(rep.Truncated) != 0 {
		t.Fatalf("clean log reported truncations: %v", rep.Truncated)
	}
	// A new generation continues after the highest on disk.
	if err := l2.Begin(ShardWriters(1, false)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000003-s0.ndjson")); err != nil {
		t.Fatalf("third generation segment missing: %v", err)
	}
}

// TestTornTail pins the crash-signature rules: an unterminated final
// line of a writer's newest segment is tolerated (and truncated in
// recovery mode); everything else malformed is a hard error.
func TestTornTail(t *testing.T) {
	write := func(t *testing.T, dir, name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	line1 := `{"seq":1,"type":"resolve"}` + "\n"
	line2 := `{"seq":2,"type":"resolve"}` + "\n"

	t.Run("torn tail truncated on recovery", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "seg-000001-s0.ndjson", line1+`{"seq":2,"ty`)
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := l.ReadAll(true)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Records) != 1 || rep.MaxSeq != 1 {
			t.Fatalf("got %d records max %d, want the valid prefix only", len(rep.Records), rep.MaxSeq)
		}
		if got := rep.Truncated["seg-000001-s0.ndjson"]; got != int64(len(line1)) {
			t.Fatalf("truncated at %d, want %d", got, len(line1))
		}
		data, err := os.ReadFile(filepath.Join(dir, "seg-000001-s0.ndjson"))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != line1 {
			t.Fatalf("file not truncated: %q", data)
		}
	})
	t.Run("live read leaves torn tail in place", func(t *testing.T) {
		dir := t.TempDir()
		body := line1 + `{"seq":2,"ty`
		write(t, dir, "seg-000001-s0.ndjson", body)
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := l.ReadAll(false)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Records) != 1 || len(rep.Truncated) != 0 {
			t.Fatalf("live read: %d records, truncated %v", len(rep.Records), rep.Truncated)
		}
		data, _ := os.ReadFile(filepath.Join(dir, "seg-000001-s0.ndjson"))
		if string(data) != body {
			t.Fatalf("live read modified the file: %q", data)
		}
	})
	t.Run("torn decodable tail is still torn", func(t *testing.T) {
		// The newline itself was lost mid-write: the line decodes but the
		// write was not complete, so it is truncated like any torn tail.
		dir := t.TempDir()
		write(t, dir, "seg-000001-s0.ndjson", line1+`{"seq":2,"type":"resolve"}`)
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := l.ReadAll(true)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Records) != 1 {
			t.Fatalf("got %d records, want 1", len(rep.Records))
		}
	})
	t.Run("malformed mid-log is a hard error", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "seg-000001-s0.ndjson", line1+"garbage\n"+line2)
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.ReadAll(true); err == nil || !strings.Contains(err.Error(), "mid-log") {
			t.Fatalf("mid-log corruption not rejected: %v", err)
		}
	})
	t.Run("terminated malformed final line is a hard error", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "seg-000001-s0.ndjson", line1+"garbage\n")
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.ReadAll(true); err == nil || !strings.Contains(err.Error(), "torn") {
			t.Fatalf("terminated malformed final line not rejected: %v", err)
		}
	})
	t.Run("torn tail in sealed segment is a hard error", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "seg-000001-s0.ndjson", line1+`{"seq":2,"ty`)
		write(t, dir, "seg-000002-s0.ndjson", line2)
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.ReadAll(true); err == nil || !strings.Contains(err.Error(), "sealed") {
			t.Fatalf("torn tail in sealed segment not rejected: %v", err)
		}
	})
	t.Run("unrecognized segment name is a hard error", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "seg-abc.ndjson", line1)
		if _, err := Open(Options{Dir: dir}); err == nil {
			t.Fatal("bad segment file name not rejected")
		}
	})
}

// TestSyncPolicies exercises each policy's durability point end to end
// (fsync effects are not observable in-process; this pins the flush
// plumbing and that Commit is a no-op off SyncBatch).
func TestSyncPolicies(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncNone, SyncInterval, SyncBatch} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Sync: sync, SyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Begin(ShardWriters(1, false)); err != nil {
				t.Fatal(err)
			}
			app := l.Appender(ShardWriter(0))
			if err := app.Append(&Record{Seq: 1, Type: TypeResolve}); err != nil {
				t.Fatal(err)
			}
			if err := app.Commit(); err != nil {
				t.Fatal(err)
			}
			if sync == SyncBatch {
				// Group commit makes the record durable before any ack: the
				// file must contain it already.
				data, err := os.ReadFile(filepath.Join(dir, "seg-000001-s0.ndjson"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Contains(data, []byte(`"seq":1`)) {
					t.Fatalf("SyncBatch Commit did not flush: %q", data)
				}
			}
			if err := l.FlushAll(); err != nil {
				t.Fatal(err)
			}
			rep, err := l.ReadAll(false)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Records) != 1 {
				t.Fatalf("got %d records after FlushAll, want 1", len(rep.Records))
			}
			if err := l.Close(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAppenderLargeBuffer drives an appender past the flush threshold
// so the mid-stream drain path runs.
func TestAppenderLargeBuffer(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(ShardWriters(1, false)); err != nil {
		t.Fatal(err)
	}
	app := l.Appender(ShardWriter(0))
	n := appenderFlushAt/16 + 64
	for i := 1; i <= n; i++ {
		if err := app.Append(&Record{Seq: uint64(i), Type: TypeResolve, Tenant: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	rep, err := l.ReadAll(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != n || rep.MaxSeq != uint64(n) {
		t.Fatalf("got %d records max %d, want %d", len(rep.Records), rep.MaxSeq, n)
	}
}

// FuzzWALReplay fuzzes the segment parser: it must never panic, never
// skip a malformed line silently (records returned must re-encode to a
// prefix of the input modulo the torn tail), and must uphold the
// torn-tail rules.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(`{"seq":1,"type":"resolve"}` + "\n"))
	f.Add([]byte(`{"seq":1,"type":"stream_arrival","tenant":2,"stream":3}` + "\n" + `{"seq":2,"ty`))
	f.Add([]byte(`{"type":"catalog_settle","op":"commit","full":1.5}` + "\n\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte(`{"seq":1,"type":"resolve"}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := parseSegment(data)
		if err != nil {
			return
		}
		if sd.tornAt > int64(len(data)) {
			t.Fatalf("tornAt %d beyond input length %d", sd.tornAt, len(data))
		}
		if sd.tornAt >= 0 {
			// Everything after the torn offset must hold no newline — the
			// torn tail is by definition the unterminated final line.
			if bytes.IndexByte(data[sd.tornAt:], '\n') >= 0 {
				t.Fatalf("torn tail at %d contains a newline", sd.tornAt)
			}
		}
		// Accepted records must decode back from their own encoding
		// (the parser accepted only well-formed lines).
		var buf []byte
		for i := range sd.records {
			buf = AppendRecord(buf[:0], &sd.records[i])
			if _, err := DecodeRecord(buf[:len(buf)-1]); err != nil {
				t.Fatalf("accepted record %d does not re-decode: %v", i, err)
			}
			if sd.records[i].Type == "" {
				t.Fatalf("accepted record %d has empty type", i)
			}
		}
	})
}

// TestParseGen pins full-consumption parsing: a 7-digit generation
// must parse whole (a scanf-style 6-digit width would silently
// truncate 1000000 to 100000, colliding with an earlier generation),
// and any non-digit or non-positive token fails loudly.
func TestParseGen(t *testing.T) {
	good := map[string]int{
		"000001":  1,
		"000042":  42,
		"999999":  999999,
		"1000000": 1000000,
	}
	for s, want := range good {
		got, err := parseGen(s)
		if err != nil || got != want {
			t.Errorf("parseGen(%q) = %d, %v; want %d, nil", s, got, err, want)
		}
	}
	for _, s := range []string{"", "000000", "-00001", "+00001", "00001x", "1e3", " 1", "0000010x"} {
		if g, err := parseGen(s); err == nil {
			t.Errorf("parseGen(%q) = %d, want error", s, g)
		}
	}
}
