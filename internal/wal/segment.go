package wal

import (
	"bytes"
	"fmt"
	"sync"
)

// SyncPolicy selects how eagerly an appender makes records durable.
type SyncPolicy int

const (
	// SyncNone buffers appends in process and writes them out only when
	// the buffer fills or the segment is sealed. Fastest; a crash loses
	// whatever was still buffered (acked events included).
	SyncNone SyncPolicy = iota
	// SyncInterval has the log's background syncer flush and fsync every
	// appender on a fixed interval; a crash loses at most one interval.
	SyncInterval
	// SyncBatch is group commit: the shard's committer goroutine flushes
	// and fsyncs the segment once per acknowledgement group, before any
	// of the group's results are delivered — an acknowledged event
	// survives even power loss. The fsync runs off the worker's apply
	// loop and groups queued behind an in-flight fsync share the next
	// one, so a pipelined submitter pays roughly one fsync per disk
	// latency, not per ack group.
	SyncBatch
)

// ParseSyncPolicy maps the mmdserve flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "batch", "":
		return SyncBatch, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want none, interval, or batch)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// appenderFlushAt is the buffered-bytes threshold that forces a write
// syscall regardless of policy, so SyncNone still drains steadily.
const appenderFlushAt = 32 << 10

// preallocChunk is the segment preallocation granularity. A chunk is
// zero-filled and synced ahead of the append head, so group commits
// overwrite blocks that are already allocated and written back: the
// commit's fdatasync is then pure data writeback plus a device flush —
// it never has to commit the filesystem journal, and (the part that
// matters on a shared journal) never locks out the other shard
// workers' write calls while it runs. The cost — writing the chunk
// twice — is paid once per chunk at segment open or growth, off the
// ack path. Sealing truncates the unused tail away; a crash leaves a
// zero tail that the segment parser already classifies as torn
// (recovery truncates it, the live bulk reader skips it).
const preallocChunk = 256 << 10

// zeroChunk is the shared write buffer for preallocation fills.
var zeroChunk = make([]byte, 64<<10)

// An Appender is one writer's handle on the active segment file. Each
// shard worker owns exactly one (the ownership rule: nothing else
// appends to a shard's segment), and the catalog registry's owner
// goroutine owns one more. Append never blocks on the disk beyond the
// occasional buffer drain; Commit is the group-commit barrier.
//
// The internal mutex exists for the log's background syncer, the
// resharding bulk reader (which must observe flushed bytes), and the
// commit goroutines, not for concurrent appends — appends stay
// single-writer. Durability progress is a pair of byte watermarks:
// flushed (handed to the kernel) and synced (covered by an fsync).
// Commit snapshots the flushed watermark, fsyncs with the lock
// dropped — so the owning worker keeps appending — and then advances
// the synced watermark; a commit whose target is already covered by a
// concurrent fsync skips the syscall entirely.
type Appender struct {
	name string

	mu       sync.Mutex
	f        File
	fl       *flusher // shared commit flusher (SyncBatch only)
	buf      []byte
	flushed  uint64 // bytes handed to the kernel
	synced   uint64 // bytes covered by an fsync
	prealloc uint64 // bytes zero-filled ahead of the append head
	sync     SyncPolicy
	err      error // first append/flush/sync error, latched
}

// Name returns the writer name (e.g. "s0", "catalog").
func (a *Appender) Name() string { return a.name }

// Append encodes r onto the appender's buffer, draining to the file
// when the buffer is full. Errors are latched and resurface on Commit,
// Flush, and seal — an appender that has failed once stays failed.
func (a *Appender) Append(r *Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	a.buf = AppendRecord(a.buf, r)
	if len(a.buf) >= appenderFlushAt {
		a.flushLocked()
	}
	return a.err
}

// Commit is the group-commit barrier: under SyncBatch it flushes the
// buffer and fsyncs the segment, making every record appended before
// the call durable; under the other policies it is a no-op (their
// durability points are elsewhere). The shard's committer goroutine
// calls it once per acknowledgement group, before delivering any of
// the group's results. The fsync runs with the lock dropped, so the
// owning worker's appends proceed while the disk catches up; records
// appended during the fsync simply stay unsynced until the next
// commit.
func (a *Appender) Commit() error {
	a.mu.Lock()
	if a.sync != SyncBatch || a.err != nil {
		err := a.err
		a.mu.Unlock()
		return err
	}
	a.flushLocked()
	if a.err != nil || a.flushed == a.synced {
		err := a.err
		a.mu.Unlock()
		return err
	}
	target := a.flushed
	f, fl := a.f, a.fl
	a.mu.Unlock()
	var serr error
	if fl != nil {
		serr = fl.Flush(f)
	} else {
		serr = f.Datasync()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if serr != nil {
		if a.err == nil {
			a.err = fmt.Errorf("wal: %s: fsync: %w", a.name, serr)
		}
		return a.err
	}
	if target > a.synced {
		a.synced = target
	}
	return a.err
}

// Flush writes buffered records to the kernel (no fsync). Used by the
// background interval syncer and by the resharding bulk reader, which
// needs the file to contain everything appended so far.
func (a *Appender) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flushLocked()
	return a.err
}

// flushAndSync is Flush plus fsync (the interval syncer's step).
func (a *Appender) flushAndSync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flushLocked()
	a.syncLocked()
	return a.err
}

func (a *Appender) flushLocked() {
	if a.err != nil || len(a.buf) == 0 {
		return
	}
	n := len(a.buf)
	if want := a.flushed + uint64(n); want > a.prealloc {
		a.preallocLocked(want)
		if a.err != nil {
			return
		}
	}
	if _, err := a.f.Write(a.buf); err != nil {
		a.err = fmt.Errorf("wal: %s: write: %w", a.name, err)
		return
	}
	a.buf = a.buf[:0]
	a.flushed += uint64(n)
}

// preallocLocked zero-fills and syncs whole chunks until the file
// covers want bytes. WriteAt leaves the append offset alone; the
// datasync writes the zeros back so the eventual record overwrites are
// metadata-free (see preallocChunk).
func (a *Appender) preallocLocked(want uint64) {
	next := (want + preallocChunk - 1) / preallocChunk * preallocChunk
	for off := a.prealloc; off < next; {
		chunk := uint64(len(zeroChunk))
		if off+chunk > next {
			chunk = next - off
		}
		if _, err := a.f.WriteAt(zeroChunk[:chunk], int64(off)); err != nil {
			a.err = fmt.Errorf("wal: %s: preallocate: %w", a.name, err)
			return
		}
		off += chunk
	}
	if err := a.f.Datasync(); err != nil {
		a.err = fmt.Errorf("wal: %s: preallocate sync: %w", a.name, err)
		return
	}
	a.prealloc = next
}

func (a *Appender) syncLocked() {
	if a.err != nil || a.flushed == a.synced {
		return
	}
	if err := a.f.Datasync(); err != nil {
		a.err = fmt.Errorf("wal: %s: fsync: %w", a.name, err)
		return
	}
	a.synced = a.flushed
}

// seal flushes, truncates the preallocated tail away, fsyncs, and
// closes the segment file (checkpoint rotation and log close) — a
// sealed segment is exactly its records, no zero tail.
func (a *Appender) seal() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flushLocked()
	if a.err == nil && a.prealloc > a.flushed {
		if err := a.f.Truncate(int64(a.flushed)); err != nil {
			a.err = fmt.Errorf("wal: %s: truncate prealloc tail: %w", a.name, err)
		} else {
			a.prealloc = a.flushed
		}
	}
	if a.err == nil {
		// Full fsync, not datasync: the truncated size must be durable
		// before the manifest that fences this generation is written.
		if err := a.f.Sync(); err != nil {
			a.err = fmt.Errorf("wal: %s: fsync: %w", a.name, err)
		} else {
			a.synced = a.flushed
		}
	}
	if cerr := a.f.Close(); cerr != nil && a.err == nil {
		a.err = fmt.Errorf("wal: %s: close: %w", a.name, cerr)
	}
	return a.err
}

// segmentData is one parsed segment file.
type segmentData struct {
	records []Record
	// tornAt >= 0 marks a torn final line: the byte offset of the valid
	// prefix (recovery truncates the file there). -1 when the segment is
	// clean.
	tornAt int64
}

// parseSegment parses a segment body. Torn-tail rule: a line that
// fails to decode is tolerated only when it is the final line and
// unterminated (no trailing newline) — the signature of a crash
// mid-write. A malformed line anywhere else, or a newline-terminated
// final line that does not decode, is a hard error; the log is never
// silently skipped over mid-file.
func parseSegment(data []byte) (segmentData, error) {
	out := segmentData{tornAt: -1}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated final line: decodable means the terminator
			// itself was lost mid-write (still a torn tail — the write
			// was not complete); undecodable is the classic torn line.
			// Either way the valid prefix ends here.
			out.tornAt = off
			return out, nil
		}
		line := data[:nl]
		if len(bytes.TrimSpace(line)) > 0 {
			rec, err := DecodeRecord(line)
			if err != nil {
				if int64(nl+1) == int64(len(data)) {
					return out, fmt.Errorf("wal: segment offset %d: terminated final line is malformed (not a torn tail): %w", off, err)
				}
				return out, fmt.Errorf("wal: segment offset %d: malformed record mid-log: %w", off, err)
			}
			out.records = append(out.records, rec)
		}
		data = data[nl+1:]
		off += int64(nl + 1)
	}
	return out, nil
}
