//go:build !linux

package wal

import "os"

// datasync falls back to a full fsync where fdatasync(2) is
// unavailable; durability is identical, only the per-commit journal
// cost differs.
func datasync(f *os.File) error { return f.Sync() }

// deviceFlush degrades to a full fsync per file without
// sync_file_range(2): correct, just without the shared-round saving.
func deviceFlush(files []*os.File) error {
	for _, f := range files {
		if err := datasync(f); err != nil {
			return err
		}
	}
	return nil
}
