//go:build !linux

package wal

import "os"

// datasync falls back to a full fsync where fdatasync(2) is
// unavailable; durability is identical, only the per-commit journal
// cost differs.
func datasync(f *os.File) error { return f.Sync() }

// Datasync implements File; full fsync fallback (see datasync).
func (f osFile) Datasync() error { return datasync(f.File) }
