//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes f's data (and the metadata needed to read it back —
// the file size — per fdatasync(2)) without forcing a journal commit
// for timestamp updates the log never reads. On the group-commit hot
// path this is the difference between one jbd2 transaction per commit
// and one per sync-relevant metadata change.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// deviceFlush is one coalesced flush round: write back every file's
// dirty pages, then push the device cache once via a single fdatasync.
// sync_file_range(2) moves data to the device without the device-cache
// FLUSH fdatasync would issue per file; the FLUSH is device-global, so
// the final fdatasync covers every file in the round. A filesystem
// that rejects sync_file_range falls back to fdatasync per file.
func deviceFlush(files []*os.File) error {
	const wbFlags = 0x1 | 0x2 | 0x4 // WAIT_BEFORE | WRITE | WAIT_AFTER
	for _, f := range files {
		for {
			err := syscall.SyncFileRange(int(f.Fd()), 0, 0, wbFlags)
			if err == syscall.EINTR {
				continue
			}
			if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
				// No range writeback here: fdatasync everything.
				return flushEach(files)
			}
			if err != nil {
				return err
			}
			break
		}
	}
	if len(files) == 0 {
		return nil
	}
	return datasync(files[0])
}

func flushEach(files []*os.File) error {
	for _, f := range files {
		if err := datasync(f); err != nil {
			return err
		}
	}
	return nil
}
