//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes f's data (and the metadata needed to read it back —
// the file size — per fdatasync(2)) without forcing a journal commit
// for timestamp updates the log never reads. On the group-commit hot
// path this is the difference between one jbd2 transaction per commit
// and one per sync-relevant metadata change.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// deviceFlush is one coalesced flush round: start writeback on every
// file in the round, then fdatasync each one. Durability rests
// entirely on the per-file fdatasync calls — sync_file_range(2)
// carries no integrity guarantee (per its man page), and a lone
// fdatasync of one already-written-back file may legally elide the
// device-cache FLUSH on filesystems that gate it on dirty data or log
// state (XFS, notably), so it cannot stand in for the others. The
// async SYNC_FILE_RANGE_WRITE pass is purely a pipelining hint: it
// puts every file's pages in flight before the first fdatasync blocks,
// so the round pays overlapped I/O instead of serial writebacks; any
// failure there just loses the overlap.
func deviceFlush(files []*os.File) error {
	const wbAsync = 0x2 // SYNC_FILE_RANGE_WRITE: start writeback, don't wait
	for _, f := range files {
		for {
			err := syscall.SyncFileRange(int(f.Fd()), 0, 0, wbAsync)
			if err != syscall.EINTR {
				break
			}
		}
	}
	return flushEach(files)
}

func flushEach(files []*os.File) error {
	for _, f := range files {
		if err := datasync(f); err != nil {
			return err
		}
	}
	return nil
}
