//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes f's data (and the metadata needed to read it back —
// the file size — per fdatasync(2)) without forcing a journal commit
// for timestamp updates the log never reads. On the group-commit hot
// path this is the difference between one jbd2 transaction per commit
// and one per sync-relevant metadata change.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// Datasync implements File via fdatasync(2).
func (f osFile) Datasync() error { return datasync(f.File) }

// writeback starts async writeback of f's dirty pages
// (SYNC_FILE_RANGE_WRITE) without waiting. Purely a pipelining hint
// for coalesced flush rounds: it puts every file's pages in flight
// before the first fdatasync blocks, so the round pays overlapped I/O
// instead of serial writebacks. sync_file_range(2) carries no
// integrity guarantee (per its man page), so any failure here just
// loses the overlap — durability rests on the fdatasyncs that follow.
func (f osFile) writeback() {
	const wbAsync = 0x2 // SYNC_FILE_RANGE_WRITE: start writeback, don't wait
	for {
		err := syscall.SyncFileRange(int(f.Fd()), 0, 0, wbAsync)
		if err != syscall.EINTR {
			return
		}
	}
}
