package wal

import "sync"

// A flusher coalesces group commits across a log's writers into shared
// flush rounds: a committer registers its file and waits for the next
// round, whose leader starts async writeback on every registered file
// (sync_file_range on Linux) and then fdatasyncs each one. The round's
// saving is pipelining — every file's pages are in flight before the
// first fdatasync blocks, so N committers pay overlapped I/O instead
// of N serial writebacks — not a skipped sync: durability rests on the
// per-file fdatasyncs alone. (sync_file_range carries no integrity
// guarantee, and a single fdatasync cannot stand in for the others —
// some filesystems, XFS notably, elide the device-cache FLUSH when the
// file has no dirty data or log state of its own.)
//
// Rounds self-batch exactly like the ack groups one level up: while a
// round is in flight, arriving commits gather into the next one, so a
// saturated log converges on back-to-back rounds each covering every
// writer with pending data. No timers, no tuning knob.
//
// Correctness: a round returns only after every registered file is
// fdatasync-durable. Segment sizes are durable independently of rounds
// — the appender syncs each preallocation chunk when it is claimed —
// so data within the preallocated region is readable after a crash
// once the round's fdatasyncs hold. On platforms without
// sync_file_range the round is fdatasync per file with no writeback
// overlap.
type flusher struct {
	mu    sync.Mutex
	files []File
	round *flushRound

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

type flushRound struct {
	done chan struct{}
	err  error
}

func newFlusher() *flusher {
	fl := &flusher{
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go fl.loop()
	return fl
}

// Flush makes everything written to f so far durable. It blocks until
// a flush round covering the registration completes.
func (fl *flusher) Flush(f File) error {
	fl.mu.Lock()
	if fl.round == nil {
		fl.round = &flushRound{done: make(chan struct{})}
	}
	r := fl.round
	found := false
	for _, g := range fl.files {
		if g == f {
			found = true
			break
		}
	}
	if !found {
		fl.files = append(fl.files, f)
	}
	fl.mu.Unlock()
	select {
	case fl.kick <- struct{}{}:
	default:
	}
	<-r.done
	return r.err
}

// Close stops the round loop after draining any gathered round.
func (fl *flusher) Close() {
	close(fl.stop)
	<-fl.done
}

func (fl *flusher) loop() {
	defer close(fl.done)
	for {
		select {
		case <-fl.stop:
			// Drain a round gathered after the last kick was consumed.
			fl.run()
			return
		case <-fl.kick:
			fl.run()
		}
	}
}

func (fl *flusher) run() {
	fl.mu.Lock()
	files, r := fl.files, fl.round
	fl.files, fl.round = nil, nil
	fl.mu.Unlock()
	if r == nil {
		return
	}
	r.err = deviceFlush(files)
	close(r.done)
}
