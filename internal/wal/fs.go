package wal

import "os"

// File is the slice of *os.File behavior a segment appender needs. The
// log writes through this interface so tests can inject disk faults —
// short writes, latched fsync errors, torn tails — at exact byte
// offsets instead of hand-crafting corrupt segment files (see
// internal/chaos). Implementations must be comparable with ==: the
// commit flusher dedups registered files by identity.
type File interface {
	Write(p []byte) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	// Sync is a full fsync: data plus all metadata, including a
	// truncated size. Sealing uses it; the hot path never does.
	Sync() error
	// Datasync flushes file data and the metadata needed to read it
	// back (fdatasync(2) where available, full fsync elsewhere).
	Datasync() error
	Close() error
}

// FS opens the log's segment files. Only segment data goes through it:
// directory scans, manifest tmp+rename fences, and recovery reads stay
// on the real filesystem, because the faults worth injecting are the
// ones on the append/commit path — a manifest rename either happened
// or it didn't, which crash tests already cover by deleting it.
type FS interface {
	// OpenSegment creates path exclusively (O_CREATE|O_EXCL|O_WRONLY)
	// for a new segment. Exclusive creation is load-bearing: two
	// writers claiming one segment name is a bug this surfaces.
	OpenSegment(path string) (File, error)
}

// OSFS is the real filesystem — the default when Options.FS is nil.
type OSFS struct{}

// OpenSegment implements FS on the host filesystem.
func (OSFS) OpenSegment(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// osFile adapts *os.File to File. Datasync and the writeback hint are
// per-platform (fs_linux.go, fs_other.go).
type osFile struct{ *os.File }

// fileWriteback is the optional async-writeback hint a flush round
// starts before its fdatasyncs (sync_file_range on Linux). Injected
// files that don't implement it just lose the I/O overlap, never
// durability — deviceFlush treats the hint as best-effort.
type fileWriteback interface {
	writeback()
}

// deviceFlush is one coalesced flush round: start async writeback on
// every file that supports the hint, then Datasync each one.
// Durability rests entirely on the per-file Datasync calls — the
// writeback pass only overlaps the I/O (see flusher).
func deviceFlush(files []File) error {
	for _, f := range files {
		if wb, ok := f.(fileWriteback); ok {
			wb.writeback()
		}
	}
	for _, f := range files {
		if err := f.Datasync(); err != nil {
			return err
		}
	}
	return nil
}
