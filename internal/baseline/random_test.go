package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/generator"
)

func TestRandomFeasibleAndDeterministic(t *testing.T) {
	in, err := generator.CableTV{Channels: 25, Gateways: 6, Seed: 94}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := baseline.Random(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	a2, err := baseline.Random(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("same seed produced different assignments")
	}
	a3, err := baseline.Random(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Equal(a3) && a1.Pairs() > 0 {
		// Different seeds usually differ on a contended instance; a
		// collision would be suspicious but not impossible, so only
		// flag when utilities also coincide exactly.
		if a1.Utility(in) == a3.Utility(in) {
			t.Log("different seeds produced identical assignments (allowed but rare)")
		}
	}
}
