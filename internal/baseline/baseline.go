// Package baseline implements the utility-blind admission policies the
// paper argues against (Section 1: "most solutions in use today employ a
// simple threshold-based admission control policy, where requests are
// admitted so long as they do not go over certain safety margins"), plus
// ablation variants of the greedy algorithm. Experiments E9 and the
// ablation benches compare them with the paper's algorithms.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mmd"
)

// Threshold runs threshold-based admission control: streams are
// considered in the given order (index order when nil) and admitted as
// long as every server budget stays below margin*B_i; an admitted stream
// is delivered to every interested user whose capacities stay below
// margin*K^u_j. Utilities play no role beyond marking interest, which is
// exactly the naivety the paper criticizes. margin must be in (0, 1].
func Threshold(in *mmd.Instance, order []int, margin float64) (*mmd.Assignment, error) {
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("baseline: margin must be in (0, 1]; got %v", margin)
	}
	if order == nil {
		order = identityOrder(in.NumStreams())
	}
	assn := mmd.NewAssignment(in.NumUsers())
	serverCost := make([]float64, in.M())
	userLoad := make([][]float64, in.NumUsers())
	for u := range userLoad {
		userLoad[u] = make([]float64, len(in.Users[u].Capacities))
	}

	for _, s := range order {
		interested := interestedUsers(in, s)
		if len(interested) == 0 {
			continue
		}
		admit := true
		for i, c := range in.Streams[s].Costs {
			if serverCost[i]+c > margin*in.Budgets[i]+1e-12 {
				admit = false
				break
			}
		}
		if !admit {
			continue
		}
		// Deliver to each interested user that still has headroom.
		delivered := false
		for _, u := range interested {
			usr := &in.Users[u]
			fits := true
			for j := range usr.Capacities {
				if userLoad[u][j]+usr.Loads[j][s] > margin*usr.Capacities[j]+1e-12 {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			for j := range usr.Capacities {
				userLoad[u][j] += usr.Loads[j][s]
			}
			assn.Add(u, s)
			delivered = true
		}
		if delivered {
			for i, c := range in.Streams[s].Costs {
				serverCost[i] += c
			}
		}
	}
	return assn, nil
}

// StaticGreedy is the ablation variant of the paper's greedy: streams are
// ranked once by static density (total utility per unit of normalized
// cost) with no residual-utility updates and no best-single-stream fix.
// Section 2.2 explains why this can be arbitrarily bad.
func StaticGreedy(in *mmd.Instance) (*mmd.Assignment, error) {
	type ranked struct {
		s       int
		density float64
	}
	streams := make([]ranked, 0, in.NumStreams())
	for s := 0; s < in.NumStreams(); s++ {
		cost := 0.0
		for i, c := range in.Streams[s].Costs {
			if b := in.Budgets[i]; b > 0 && !math.IsInf(b, 1) {
				cost += c / b
			}
		}
		w := in.StreamUtility(s)
		density := math.Inf(1)
		if cost > 0 {
			density = w / cost
		}
		if w > 0 {
			streams = append(streams, ranked{s: s, density: density})
		}
	}
	sort.Slice(streams, func(a, b int) bool {
		if streams[a].density != streams[b].density {
			return streams[a].density > streams[b].density
		}
		return streams[a].s < streams[b].s
	})
	order := make([]int, len(streams))
	for i, r := range streams {
		order[i] = r.s
	}
	return Threshold(in, order, 1)
}

// CheapestFirst admits streams in increasing order of normalized cost —
// a pure packing heuristic that ignores utilities entirely.
func CheapestFirst(in *mmd.Instance) (*mmd.Assignment, error) {
	order := identityOrder(in.NumStreams())
	cost := make([]float64, in.NumStreams())
	for s := range cost {
		for i, c := range in.Streams[s].Costs {
			if b := in.Budgets[i]; b > 0 && !math.IsInf(b, 1) {
				cost[s] += c / b
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] < cost[order[b]]
		}
		return order[a] < order[b]
	})
	return Threshold(in, order, 1)
}

// Random admits streams in a seeded random order with margin-1
// threshold semantics — the weakest sensible baseline (a head-end that
// zaps through its catalog arbitrarily).
func Random(in *mmd.Instance, seed int64) (*mmd.Assignment, error) {
	rng := rand.New(rand.NewSource(seed))
	return Threshold(in, rng.Perm(in.NumStreams()), 1)
}

// identityOrder returns [0, 1, ..., n-1].
func identityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// interestedUsers returns the users with positive utility for stream s.
func interestedUsers(in *mmd.Instance, s int) []int {
	var out []int
	for u := range in.Users {
		if in.Users[u].Utility[s] > 0 {
			out = append(out, u)
		}
	}
	return out
}
