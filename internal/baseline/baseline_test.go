package baseline_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/mmd"
)

func TestThresholdFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		in, err := generator.RandomMMD{
			Streams: 15, Users: 5, M: 3, MC: 2, Seed: rng.Int63(), Skew: 4,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, margin := range []float64{0.5, 0.9, 1.0} {
			a, err := baseline.Threshold(in, nil, margin)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.CheckFeasible(in); err != nil {
				t.Fatalf("trial %d margin %v: %v", trial, margin, err)
			}
		}
	}
}

func TestThresholdRejectsBadMargin(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 3, Users: 2, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, margin := range []float64{0, -1, 1.5} {
		if _, err := baseline.Threshold(in, nil, margin); err == nil {
			t.Errorf("Threshold accepted margin %v", margin)
		}
	}
}

func TestThresholdOrderMatters(t *testing.T) {
	// Two streams that both fit alone but not together; the order
	// decides which is admitted.
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{3}},
			{Name: "b", Costs: []float64{3}},
		},
		Users: []mmd.User{{
			Utility:    []float64{1, 5},
			Loads:      [][]float64{{1, 5}},
			Capacities: []float64{10},
		}},
		Budgets: []float64{4},
	}
	fwd, err := baseline.Threshold(in, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := baseline.Threshold(in, []int{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Utility(in) != 1 || rev.Utility(in) != 5 {
		t.Fatalf("order insensitivity: fwd %v rev %v, want 1 and 5",
			fwd.Utility(in), rev.Utility(in))
	}
}

func TestStaticGreedyAndCheapestFirstFeasible(t *testing.T) {
	in, err := generator.CableTV{Channels: 25, Gateways: 6, Seed: 92}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sg, err := baseline.StaticGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.CheckFeasible(in); err != nil {
		t.Fatalf("StaticGreedy: %v", err)
	}
	cf, err := baseline.CheapestFirst(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.CheckFeasible(in); err != nil {
		t.Fatalf("CheapestFirst: %v", err)
	}
}

// TestSolverBeatsThresholdOnContendedWorkload reproduces the paper's
// motivation: on a contended cable-TV workload with heterogeneous
// utilities, the utility-aware solver collects more value than
// threshold admission. (Checked across seeds in aggregate to avoid
// flaking on a lucky arrival order.)
func TestSolverBeatsThresholdOnContendedWorkload(t *testing.T) {
	solverTotal, thresholdTotal := 0.0, 0.0
	for seed := int64(0); seed < 8; seed++ {
		in, err := generator.CableTV{
			Channels: 40, Gateways: 10, Seed: seed, EgressFraction: 0.2,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := baseline.Threshold(in, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		solverTotal += a.Utility(in)
		thresholdTotal += b.Utility(in)
	}
	if solverTotal <= thresholdTotal {
		t.Fatalf("solver total %v does not beat threshold total %v", solverTotal, thresholdTotal)
	}
}

func TestStaticGreedyFooledByBlockingFamily(t *testing.T) {
	in, err := generator.BlockingFamily(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := baseline.StaticGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	// Static greedy takes the tiny stream (better density) and blocks
	// the huge one — utility stays near 1 while OPT is ~100.
	if got := a.Utility(in); got > 50 {
		t.Fatalf("StaticGreedy = %v; expected it to be fooled (< 50)", got)
	}
	s, _, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Utility(in); got < 100 {
		t.Fatalf("core solver = %v, want >= 100 on the blocking family", got)
	}
}
