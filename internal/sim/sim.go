// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock and an event queue ordered by (time, insertion order).
// The network simulator and the head-end scenario run on top of it, so
// every experiment is reproducible bit-for-bit regardless of host load.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: cannot schedule into the past")

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the simulation core. It is not safe for concurrent use; the
// simulation world is single-threaded by design (determinism).
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue
}

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after the given delay (in virtual seconds).
func (e *Engine) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("sim: delay %v: %w", delay, ErrPastEvent)
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time.
func (e *Engine) ScheduleAt(at float64, fn func()) error {
	if at < e.now || math.IsNaN(at) {
		return fmt.Errorf("sim: time %v < now %v: %w", at, e.now, ErrPastEvent)
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// Step executes the next event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the number of
// events executed. Event handlers may schedule further events.
func (e *Engine) Run() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// RunUntil executes events with time <= deadline, advances the clock to
// the deadline, and returns the number of events executed. Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
