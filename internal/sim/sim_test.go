package sim

import (
	"errors"
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	if err := e.Schedule(3, func() { got = append(got, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(1, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(2, func() { got = append(got, 2) }); err != nil {
		t.Fatal(err)
	}
	if n := e.Run(); n != 3 {
		t.Fatalf("Run() = %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.Schedule(1, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestHandlersScheduleMore(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			if err := e.Schedule(1, tick); err != nil {
				t.Errorf("re-arm failed: %v", err)
			}
		}
	}
	if err := e.Schedule(1, tick); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		if err := e.Schedule(float64(i), func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.RunUntil(3); n != 3 {
		t.Fatalf("RunUntil(3) = %d, want 3", n)
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// Advancing to a deadline past all events moves the clock there.
	e.RunUntil(100)
	if e.Now() != 100 || fired != 5 {
		t.Fatalf("Now() = %v fired = %d, want 100/5", e.Now(), fired)
	}
}

func TestScheduleRejectsPast(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("Schedule(-1) = %v, want ErrPastEvent", err)
	}
	if err := e.Schedule(5, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.ScheduleAt(1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("ScheduleAt(past) = %v, want ErrPastEvent", err)
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}
