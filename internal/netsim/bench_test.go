package netsim

import (
	"testing"

	"repro/internal/sim"
)

func benchNetwork(b *testing.B, users, streams int) (*sim.Engine, *Network) {
	b.Helper()
	engine := sim.NewEngine()
	access := make([]float64, users)
	for u := range access {
		access[u] = 100
	}
	net, err := NewTree(engine, float64(streams)*10, access)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		if err := net.RegisterStream(s, 8); err != nil {
			b.Fatal(err)
		}
	}
	return engine, net
}

func BenchmarkSubscribeUnsubscribe(b *testing.B) {
	_, net := benchNetwork(b, 50, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, s := i%50, i%100
		if err := net.Subscribe(u, s); err != nil {
			b.Fatal(err)
		}
		net.Unsubscribe(u, s)
	}
}

func BenchmarkTrunkLoad(b *testing.B) {
	_, net := benchNetwork(b, 50, 100)
	for u := 0; u < 50; u++ {
		for s := 0; s < 100; s += 5 {
			if err := net.Subscribe(u, s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.TrunkLoad()
	}
}

func BenchmarkSamplingRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine, net := benchNetwork(b, 20, 40)
		for u := 0; u < 20; u++ {
			if err := net.Subscribe(u, u%40); err != nil {
				b.Fatal(err)
			}
		}
		if err := net.StartSampling(0.1, 100); err != nil {
			b.Fatal(err)
		}
		engine.RunUntil(100)
	}
}
