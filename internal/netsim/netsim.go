// Package netsim models the multicast distribution plant under the
// head-end: a tree topology with one trunk link (the server's egress
// budget) and one access link per gateway (the user's downlink
// capacity), carrying fluid-model multicast streams. A stream crossing
// the trunk is paid for once no matter how many gateways receive it —
// exactly the multicast economics the paper's server budget abstracts.
//
// The simulator runs on a sim.Engine virtual clock. Periodic sampling
// events account delivered megabits per gateway and flag overload
// samples whenever a link's instantaneous load exceeds its capacity;
// with a feasible assignment subscribed, no overload sample can ever
// occur (exercised by experiment E10).
package netsim

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Errors returned by subscription management.
var (
	// ErrUnknownStream is returned for an unregistered stream id.
	ErrUnknownStream = errors.New("netsim: unknown stream")
	// ErrUnknownUser is returned for an out-of-range user index.
	ErrUnknownUser = errors.New("netsim: unknown user")
)

// Network is the tree-shaped multicast plant.
//
// Network is not safe for concurrent use; it lives on the simulation
// thread.
type Network struct {
	engine *sim.Engine

	trunkMbps  float64
	accessMbps []float64

	bitrate  map[int]float64
	subs     map[int]map[int]struct{} // stream -> subscribed users
	userSubs []map[int]struct{}       // user -> subscribed streams

	deliveredMb     []float64 // per user
	overloadSamples int
	totalSamples    int
	sampleInterval  float64
	samplingUntil   float64
}

// NewTree builds a head-end network with the given trunk capacity and
// one access link per gateway.
func NewTree(engine *sim.Engine, trunkMbps float64, accessMbps []float64) (*Network, error) {
	if trunkMbps < 0 {
		return nil, fmt.Errorf("netsim: negative trunk capacity %v", trunkMbps)
	}
	for u, c := range accessMbps {
		if c < 0 {
			return nil, fmt.Errorf("netsim: negative access capacity %v at user %d", c, u)
		}
	}
	n := &Network{
		engine:      engine,
		trunkMbps:   trunkMbps,
		accessMbps:  append([]float64(nil), accessMbps...),
		bitrate:     make(map[int]float64),
		subs:        make(map[int]map[int]struct{}),
		userSubs:    make([]map[int]struct{}, len(accessMbps)),
		deliveredMb: make([]float64, len(accessMbps)),
	}
	for u := range n.userSubs {
		n.userSubs[u] = make(map[int]struct{})
	}
	return n, nil
}

// RegisterStream announces a stream and its bitrate. Re-registering
// updates the bitrate.
func (n *Network) RegisterStream(stream int, bitrateMbps float64) error {
	if bitrateMbps < 0 {
		return fmt.Errorf("netsim: negative bitrate %v for stream %d", bitrateMbps, stream)
	}
	n.bitrate[stream] = bitrateMbps
	return nil
}

// Subscribe joins user u to the stream's multicast group.
func (n *Network) Subscribe(u, stream int) error {
	if _, ok := n.bitrate[stream]; !ok {
		return fmt.Errorf("netsim: subscribe stream %d: %w", stream, ErrUnknownStream)
	}
	if u < 0 || u >= len(n.userSubs) {
		return fmt.Errorf("netsim: subscribe user %d: %w", u, ErrUnknownUser)
	}
	set, ok := n.subs[stream]
	if !ok {
		set = make(map[int]struct{})
		n.subs[stream] = set
	}
	set[u] = struct{}{}
	n.userSubs[u][stream] = struct{}{}
	return nil
}

// Unsubscribe removes user u from the stream's group; the last leaver
// prunes the stream from the trunk.
func (n *Network) Unsubscribe(u, stream int) {
	if set, ok := n.subs[stream]; ok {
		delete(set, u)
		if len(set) == 0 {
			delete(n.subs, stream)
		}
	}
	if u >= 0 && u < len(n.userSubs) {
		delete(n.userSubs[u], stream)
	}
}

// TrunkLoad returns the instantaneous trunk load in Mbps: each stream
// with at least one subscriber counts once (multicast).
func (n *Network) TrunkLoad() float64 {
	load := 0.0
	for stream, set := range n.subs {
		if len(set) > 0 {
			load += n.bitrate[stream]
		}
	}
	return load
}

// AccessLoad returns the instantaneous downlink load of user u in Mbps.
func (n *Network) AccessLoad(u int) float64 {
	if u < 0 || u >= len(n.userSubs) {
		return 0
	}
	load := 0.0
	for stream := range n.userSubs[u] {
		load += n.bitrate[stream]
	}
	return load
}

// loadTolerance absorbs floating-point accumulation in capacity checks.
const loadTolerance = 1e-9

// Overloaded reports whether any link currently exceeds its capacity.
func (n *Network) Overloaded() bool {
	if n.TrunkLoad() > n.trunkMbps*(1+loadTolerance)+loadTolerance {
		return true
	}
	for u := range n.userSubs {
		if n.AccessLoad(u) > n.accessMbps[u]*(1+loadTolerance)+loadTolerance {
			return true
		}
	}
	return false
}

// StartSampling schedules delivery accounting every interval virtual
// seconds until the given end time. Each sample delivers
// bitrate*interval megabits to every subscriber when no link on the path
// is overloaded, and records an overload sample otherwise.
func (n *Network) StartSampling(interval, until float64) error {
	if interval <= 0 {
		return fmt.Errorf("netsim: non-positive sampling interval %v", interval)
	}
	n.sampleInterval = interval
	n.samplingUntil = until
	return n.engine.Schedule(interval, n.sample)
}

func (n *Network) sample() {
	n.totalSamples++
	overloaded := n.Overloaded()
	if overloaded {
		n.overloadSamples++
	} else {
		for u := range n.userSubs {
			n.deliveredMb[u] += n.AccessLoad(u) * n.sampleInterval
		}
	}
	if next := n.engine.Now() + n.sampleInterval; next <= n.samplingUntil {
		// Re-arming from inside the handler keeps one pending event.
		if err := n.engine.Schedule(n.sampleInterval, n.sample); err != nil {
			// Unreachable: delays are positive. Recorded defensively.
			n.overloadSamples = -1
		}
	}
}

// DeliveredMb returns the megabits delivered to user u so far.
func (n *Network) DeliveredMb(u int) float64 {
	if u < 0 || u >= len(n.deliveredMb) {
		return 0
	}
	return n.deliveredMb[u]
}

// TotalDeliveredMb sums delivered megabits over all users.
func (n *Network) TotalDeliveredMb() float64 {
	total := 0.0
	for _, mb := range n.deliveredMb {
		total += mb
	}
	return total
}

// OverloadSamples returns the number of samples during which some link
// was overloaded.
func (n *Network) OverloadSamples() int { return n.overloadSamples }

// TotalSamples returns the number of delivery samples taken.
func (n *Network) TotalSamples() int { return n.totalSamples }

// TrunkUtilization returns TrunkLoad / capacity (0 when uncapped).
func (n *Network) TrunkUtilization() float64 {
	if n.trunkMbps == 0 {
		return 0
	}
	return n.TrunkLoad() / n.trunkMbps
}
