package netsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

func newTestNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	engine := sim.NewEngine()
	net, err := NewTree(engine, 20, []float64{10, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	for s, rate := range []float64{8, 8, 4} {
		if err := net.RegisterStream(s, rate); err != nil {
			t.Fatal(err)
		}
	}
	return engine, net
}

func TestMulticastTrunkAccounting(t *testing.T) {
	_, net := newTestNet(t)
	// Stream 0 to two users: trunk pays once (8), not twice.
	if err := net.Subscribe(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Subscribe(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := net.TrunkLoad(); got != 8 {
		t.Fatalf("TrunkLoad = %v, want 8 (multicast counts once)", got)
	}
	if got := net.AccessLoad(0); got != 8 {
		t.Fatalf("AccessLoad(0) = %v, want 8", got)
	}
	if err := net.Subscribe(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := net.TrunkLoad(); got != 16 {
		t.Fatalf("TrunkLoad = %v, want 16", got)
	}
	if got := net.AccessLoad(0); got != 16 {
		t.Fatalf("AccessLoad(0) = %v, want 16", got)
	}
	if got := net.TrunkUtilization(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("TrunkUtilization = %v, want 0.8", got)
	}
}

func TestUnsubscribePrunesTrunk(t *testing.T) {
	_, net := newTestNet(t)
	for _, u := range []int{0, 1} {
		if err := net.Subscribe(u, 0); err != nil {
			t.Fatal(err)
		}
	}
	net.Unsubscribe(0, 0)
	if got := net.TrunkLoad(); got != 8 {
		t.Fatalf("TrunkLoad = %v, want 8 (user 1 still subscribed)", got)
	}
	net.Unsubscribe(1, 0)
	if got := net.TrunkLoad(); got != 0 {
		t.Fatalf("TrunkLoad = %v, want 0 after last leaver", got)
	}
	net.Unsubscribe(1, 0) // idempotent
}

func TestSubscribeErrors(t *testing.T) {
	_, net := newTestNet(t)
	if err := net.Subscribe(0, 99); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("err = %v, want ErrUnknownStream", err)
	}
	if err := net.Subscribe(7, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v, want ErrUnknownUser", err)
	}
	if err := net.RegisterStream(5, -1); err == nil {
		t.Fatal("RegisterStream accepted a negative bitrate")
	}
}

func TestOverloadDetection(t *testing.T) {
	_, net := newTestNet(t)
	// User 2 has a 5 Mbps access link; stream 0 is 8 Mbps.
	if err := net.Subscribe(2, 0); err != nil {
		t.Fatal(err)
	}
	if !net.Overloaded() {
		t.Fatal("8 Mbps on a 5 Mbps access link should overload")
	}
	net.Unsubscribe(2, 0)
	// Fill the trunk past 20 Mbps: 8 + 8 + 4 = 20 is fine...
	for s := 0; s < 3; s++ {
		if err := net.Subscribe(0, s); err != nil {
			t.Fatal(err)
		}
	}
	// ...but user 0's access (10) now carries 20.
	if !net.Overloaded() {
		t.Fatal("20 Mbps on a 10 Mbps access link should overload")
	}
}

func TestSamplingDeliversWhenFeasible(t *testing.T) {
	engine, net := newTestNet(t)
	if err := net.Subscribe(0, 0); err != nil { // 8 <= 10 access, 8 <= 20 trunk
		t.Fatal(err)
	}
	if err := net.StartSampling(0.5, 10); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(10)
	if got := net.OverloadSamples(); got != 0 {
		t.Fatalf("OverloadSamples = %d, want 0", got)
	}
	if got := net.TotalSamples(); got != 20 {
		t.Fatalf("TotalSamples = %d, want 20", got)
	}
	// 8 Mbps for 10 seconds = 80 Mb.
	if got := net.DeliveredMb(0); math.Abs(got-80) > 1e-9 {
		t.Fatalf("DeliveredMb(0) = %v, want 80", got)
	}
	if got := net.TotalDeliveredMb(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("TotalDeliveredMb = %v, want 80", got)
	}
}

func TestSamplingRecordsOverload(t *testing.T) {
	engine, net := newTestNet(t)
	if err := net.Subscribe(2, 0); err != nil { // 8 Mbps on a 5 Mbps link
		t.Fatal(err)
	}
	if err := net.StartSampling(1, 5); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(5)
	if got := net.OverloadSamples(); got != net.TotalSamples() || got == 0 {
		t.Fatalf("OverloadSamples = %d of %d, want all overloaded", got, net.TotalSamples())
	}
	if got := net.DeliveredMb(2); got != 0 {
		t.Fatalf("DeliveredMb(2) = %v, want 0 during overload", got)
	}
}

func TestStartSamplingRejectsBadInterval(t *testing.T) {
	_, net := newTestNet(t)
	if err := net.StartSampling(0, 5); err == nil {
		t.Fatal("StartSampling accepted zero interval")
	}
}

func TestNewTreeRejectsNegative(t *testing.T) {
	engine := sim.NewEngine()
	if _, err := NewTree(engine, -1, nil); err == nil {
		t.Fatal("NewTree accepted a negative trunk capacity")
	}
	if _, err := NewTree(engine, 1, []float64{-2}); err == nil {
		t.Fatal("NewTree accepted a negative access capacity")
	}
}

func TestOutOfRangeAccessorsAreSafe(t *testing.T) {
	_, net := newTestNet(t)
	if net.AccessLoad(-1) != 0 || net.AccessLoad(99) != 0 {
		t.Fatal("AccessLoad out of range should be 0")
	}
	if net.DeliveredMb(-1) != 0 || net.DeliveredMb(99) != 0 {
		t.Fatal("DeliveredMb out of range should be 0")
	}
}
