package emulation

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/mmd"
)

// fastConfig keeps wall-clock time per test well under a second.
func fastConfig() Config {
	return Config{
		ChunkInterval:    200 * time.Microsecond,
		Chunks:           20,
		SubscriberBuffer: 4096, // large enough that nothing ever drops
	}
}

func TestRunDeliversExactBytes(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "hd", Costs: []float64{8}},
			{Name: "sd", Costs: []float64{4}},
		},
		Users: []mmd.User{
			{Utility: []float64{5, 3}, Loads: [][]float64{{8, 4}}, Capacities: []float64{12}},
			{Utility: []float64{5, 0}, Loads: [][]float64{{8, 4}}, Capacities: []float64{12}},
		},
		Budgets: []float64{12},
	}
	assn := mmd.NewAssignment(2)
	assn.Add(0, 0)
	assn.Add(0, 1)
	assn.Add(1, 0)

	rep, err := Run(in, assn, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksDropped != 0 {
		t.Fatalf("dropped %d chunks with oversized buffers", rep.ChunksDropped)
	}
	for u := range rep.BytesReceived {
		if rep.BytesReceived[u] != rep.ExpectedBytes[u] {
			t.Fatalf("user %d received %d bytes, want %d",
				u, rep.BytesReceived[u], rep.ExpectedBytes[u])
		}
	}
	// User 0 receives 8+4 Mbps, user 1 receives 8 Mbps: strictly more.
	if rep.BytesReceived[0] <= rep.BytesReceived[1] {
		t.Fatalf("byte ordering wrong: %v", rep.BytesReceived)
	}
	if rep.ChunksSent == 0 || rep.Elapsed <= 0 {
		t.Fatal("empty report")
	}
}

func TestRunDropsOnTinyBuffers(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "x", Costs: []float64{100}}},
		Users: []mmd.User{
			{Utility: []float64{1}, Loads: [][]float64{{100}}, Capacities: []float64{100}},
		},
		Budgets: []float64{100},
	}
	assn := mmd.NewAssignment(1)
	assn.Add(0, 0)

	// A buffer of 1 with a receiver that keeps pace is unlikely to drop;
	// to force drops deterministically we flood with zero interval...
	// ChunkInterval has a default, so use the smallest allowed and many
	// chunks with a stalled receiver is not possible here — instead just
	// assert accounting consistency: sent + dropped = chunks offered.
	cfg := Config{ChunkInterval: 100 * time.Microsecond, Chunks: 50, SubscriberBuffer: 1}
	rep, err := Run(in, assn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksSent+rep.ChunksDropped != 50 {
		t.Fatalf("sent %d + dropped %d != offered 50", rep.ChunksSent, rep.ChunksDropped)
	}
}

func TestRunEmptyAssignment(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "x", Costs: []float64{1}}},
		Users: []mmd.User{
			{Utility: []float64{1}, Loads: [][]float64{{1}}, Capacities: []float64{1}},
		},
		Budgets: []float64{1},
	}
	rep, err := Run(in, mmd.NewAssignment(1), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesReceived[0] != 0 || rep.ChunksSent != 0 {
		t.Fatal("empty assignment delivered bytes")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "x", Costs: []float64{1}}},
		Users: []mmd.User{
			{Utility: []float64{1}, Loads: [][]float64{{1}}, Capacities: []float64{1}},
		},
		Budgets: []float64{1},
	}
	if _, err := Run(in, mmd.NewAssignment(1), Config{BitrateMeasure: 5}); err == nil {
		t.Fatal("Run accepted an out-of-range bitrate measure")
	}
	if _, err := Run(in, mmd.NewAssignment(3), Config{}); err == nil {
		t.Fatal("Run accepted a user-count mismatch")
	}
}

// TestEndToEndSolverEmulation is the E10 integration path: solve a
// cable-TV instance, then run the admitted assignment live and verify
// every admitted gateway receives exactly its expected payload.
func TestEndToEndSolverEmulation(t *testing.T) {
	in, err := generator.CableTV{Channels: 20, Gateways: 6, Seed: 13}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assn, _, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(in, assn, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksDropped != 0 {
		t.Fatalf("dropped %d chunks", rep.ChunksDropped)
	}
	for u := range rep.BytesReceived {
		if rep.BytesReceived[u] != rep.ExpectedBytes[u] {
			t.Fatalf("gateway %d received %d, want %d", u, rep.BytesReceived[u], rep.ExpectedBytes[u])
		}
		if assn.UserCount(u) > 0 && rep.BytesReceived[u] == 0 {
			t.Fatalf("gateway %d assigned streams but received nothing", u)
		}
	}
}
