// Package emulation runs an admitted assignment as a live system: one
// broadcaster goroutine per transmitted stream fans chunks out to
// subscriber channels, one receiver goroutine per gateway drains them —
// peers modeled as goroutines, multicast as channel fan-out. It is the
// wall-clock counterpart of the deterministic netsim fluid model and
// demonstrates that an admitted assignment is actually deliverable as a
// running process structure.
package emulation

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mmd"
)

// Config tunes the emulation.
type Config struct {
	// ChunkInterval is the pacing between chunks of one stream
	// (default 2ms).
	ChunkInterval time.Duration
	// Chunks is the number of chunks each broadcaster sends (default 25).
	Chunks int
	// SubscriberBuffer is the per-gateway channel depth (default 256).
	// When the buffer is full a chunk is dropped (recorded, never
	// blocking the broadcaster) — the emulation analogue of an
	// oversubscribed access link.
	SubscriberBuffer int
	// BitrateMeasure is the server cost measure holding the bitrate in
	// Mbps (default 0, the cable-TV convention).
	BitrateMeasure int
}

func (c Config) withDefaults() Config {
	if c.ChunkInterval == 0 {
		c.ChunkInterval = 2 * time.Millisecond
	}
	if c.Chunks == 0 {
		c.Chunks = 25
	}
	if c.SubscriberBuffer == 0 {
		c.SubscriberBuffer = 256
	}
	return c
}

// Report summarizes a run.
type Report struct {
	// BytesReceived[u] is the payload delivered to gateway u.
	BytesReceived []int64
	// ChunksSent counts every chunk handed to a subscriber channel.
	ChunksSent int64
	// ChunksDropped counts chunks lost to full subscriber buffers.
	ChunksDropped int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// ExpectedBytes[u] is the deterministic payload gateway u should
	// receive when nothing is dropped: sum over assigned streams of
	// Chunks * chunkBytes(stream).
	ExpectedBytes []int64
}

// chunk is one unit of stream payload.
type chunk struct {
	stream int
	bytes  int
}

// chunkBytes converts a bitrate and pacing interval into a chunk size:
// 1 Mbps = 125000 bytes/s.
func chunkBytes(bitrateMbps float64, interval time.Duration) int {
	b := int(bitrateMbps * 125000 * interval.Seconds())
	if b < 1 {
		b = 1 // even a degenerate stream moves a byte per chunk
	}
	return b
}

// Run emulates the assignment live and blocks until every goroutine has
// drained. The assignment must be valid for the instance.
func Run(in *mmd.Instance, assn *mmd.Assignment, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BitrateMeasure < 0 || cfg.BitrateMeasure >= in.M() {
		return nil, fmt.Errorf("emulation: bitrate measure %d out of range [0, %d)", cfg.BitrateMeasure, in.M())
	}
	if assn.NumUsers() != in.NumUsers() {
		return nil, fmt.Errorf("emulation: assignment has %d users, instance %d", assn.NumUsers(), in.NumUsers())
	}

	nU := in.NumUsers()
	report := &Report{
		BytesReceived: make([]int64, nU),
		ExpectedBytes: make([]int64, nU),
	}
	received := make([]atomic.Int64, nU)
	var sent, dropped atomic.Int64

	// Wire the fan-out: one channel per gateway, shared by all
	// broadcasters serving it.
	inboxes := make([]chan chunk, nU)
	for u := range inboxes {
		inboxes[u] = make(chan chunk, cfg.SubscriberBuffer)
	}
	subscribers := make(map[int][]int) // stream -> users
	for u := 0; u < nU; u++ {
		for _, s := range assn.UserStreams(u) {
			subscribers[s] = append(subscribers[s], u)
			report.ExpectedBytes[u] += int64(cfg.Chunks) *
				int64(chunkBytes(in.Streams[s].Costs[cfg.BitrateMeasure], cfg.ChunkInterval))
		}
	}

	start := time.Now()

	// Receivers drain until their inbox closes.
	var receivers sync.WaitGroup
	receivers.Add(nU)
	for u := 0; u < nU; u++ {
		u := u
		go func() {
			defer receivers.Done()
			for c := range inboxes[u] {
				received[u].Add(int64(c.bytes))
			}
		}()
	}

	// Broadcasters pace chunks with a ticker and never block on slow
	// receivers: a full inbox drops the chunk.
	var broadcasters sync.WaitGroup
	for s, users := range subscribers {
		s, users := s, users
		size := chunkBytes(in.Streams[s].Costs[cfg.BitrateMeasure], cfg.ChunkInterval)
		broadcasters.Add(1)
		go func() {
			defer broadcasters.Done()
			ticker := time.NewTicker(cfg.ChunkInterval)
			defer ticker.Stop()
			for i := 0; i < cfg.Chunks; i++ {
				<-ticker.C
				for _, u := range users {
					select {
					case inboxes[u] <- chunk{stream: s, bytes: size}:
						sent.Add(1)
					default:
						dropped.Add(1)
					}
				}
			}
		}()
	}

	broadcasters.Wait()
	for u := range inboxes {
		close(inboxes[u])
	}
	receivers.Wait()

	report.Elapsed = time.Since(start)
	for u := 0; u < nU; u++ {
		report.BytesReceived[u] = received[u].Load()
	}
	report.ChunksSent = sent.Load()
	report.ChunksDropped = dropped.Load()
	return report, nil
}
