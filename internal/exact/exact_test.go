package exact_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
)

// knapsackInstance is a pure knapsack: one user, no capacity pressure.
// Items (cost, value): (3,4), (4,5), (5,6); budget 7 -> best is {3,4}
// with value 9.
func knapsackInstance() *mmd.Instance {
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{3}},
			{Name: "b", Costs: []float64{4}},
			{Name: "c", Costs: []float64{5}},
		},
		Users: []mmd.User{{
			Name:    "u",
			Utility: []float64{4, 5, 6},
			Loads:   [][]float64{{4, 5, 6}},
			// Large capacity: only the budget binds.
			Capacities: []float64{100},
		}},
		Budgets: []float64{7},
	}
	return in
}

func TestSolveKnapsack(t *testing.T) {
	res, err := exact.Solve(knapsackInstance(), exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Fatalf("Value = %v, want 9", res.Value)
	}
	if !res.Assignment.Has(0, 0) || !res.Assignment.Has(0, 1) || res.Assignment.Has(0, 2) {
		t.Fatalf("wrong optimal set: %v", res.Assignment.Range())
	}
}

func TestSolveUserCapacityBinds(t *testing.T) {
	in := knapsackInstance()
	// Budget is now loose; the user capacity (8) binds instead: best
	// single pair within load 8 is {a,b} load 9 > 8 -> best is {c} load
	// 6 value 6... or {a} 4 / {b} 5; c = 6 wins; {a,b} infeasible.
	in.Budgets[0] = 100
	in.Users[0].Capacities[0] = 8
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 6 {
		t.Fatalf("Value = %v, want 6", res.Value)
	}
}

func TestSolveMultiUserSharing(t *testing.T) {
	// One stream, two users: the server pays once, both users profit.
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "shared", Costs: []float64{5}},
			{Name: "solo", Costs: []float64{5}},
		},
		Users: []mmd.User{
			{Utility: []float64{3, 4}, Loads: [][]float64{{3, 4}}, Capacities: []float64{10}},
			{Utility: []float64{3, 0}, Loads: [][]float64{{3, 0}}, Capacities: []float64{10}},
		},
		Budgets: []float64{5},
	}
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// shared gives 3+3=6 > solo's 4.
	if res.Value != 6 {
		t.Fatalf("Value = %v, want 6 (multicast sharing)", res.Value)
	}
}

func TestSolveRespectsAllBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		in, err := generator.RandomMMD{
			Streams: 8, Users: 3, M: 3, MC: 2, Seed: rng.Int63(), Skew: 3,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		res, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: optimal assignment infeasible: %v", trial, err)
		}
		if math.Abs(res.Value-res.Assignment.Utility(in)) > 1e-9 {
			t.Fatalf("trial %d: value %v != utility %v", trial, res.Value, res.Assignment.Utility(in))
		}
	}
}

// TestSolveMatchesBruteForce cross-checks branch and bound against a
// plain exhaustive search on very small instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		in, err := generator.RandomMMD{
			Streams: 5, Users: 2, M: 2, MC: 1, Seed: rng.Int63(), Skew: 2,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		res, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteForce(in)
		if math.Abs(res.Value-brute) > 1e-9 {
			t.Fatalf("trial %d: B&B %v != brute force %v", trial, res.Value, brute)
		}
	}
}

// bruteForce enumerates every (user, stream) incidence combination via
// per-user subset enumeration over every feasible server set.
func bruteForce(in *mmd.Instance) float64 {
	nS := in.NumStreams()
	best := 0.0
	for mask := 0; mask < 1<<uint(nS); mask++ {
		// Server feasibility.
		ok := true
		for i := range in.Budgets {
			cost := 0.0
			for s := 0; s < nS; s++ {
				if mask&(1<<uint(s)) != 0 {
					cost += in.Streams[s].Costs[i]
				}
			}
			if cost > in.Budgets[i]+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		total := 0.0
		for u := range in.Users {
			total += bruteUser(in, u, mask)
		}
		if total > best {
			best = total
		}
	}
	return best
}

func bruteUser(in *mmd.Instance, u, serverMask int) float64 {
	usr := &in.Users[u]
	var streams []int
	for s := 0; s < in.NumStreams(); s++ {
		if serverMask&(1<<uint(s)) != 0 && usr.Utility[s] > 0 {
			streams = append(streams, s)
		}
	}
	best := 0.0
	for mask := 0; mask < 1<<uint(len(streams)); mask++ {
		ok := true
		for j := range usr.Capacities {
			load := 0.0
			for i, s := range streams {
				if mask&(1<<uint(i)) != 0 {
					load += usr.Loads[j][s]
				}
			}
			if load > usr.Capacities[j]+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		val := 0.0
		for i, s := range streams {
			if mask&(1<<uint(i)) != 0 {
				val += usr.Utility[s]
			}
		}
		if val > best {
			best = val
		}
	}
	return best
}

func TestSolveRejectsTooLarge(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 25, Users: 2, M: 1, MC: 1, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exact.Solve(in, exact.Options{}); !errors.Is(err, exact.ErrTooLarge) {
		t.Fatalf("Solve() = %v, want ErrTooLarge", err)
	}
	if _, err := exact.Solve(in, exact.Options{MaxStreams: 30}); err != nil {
		t.Fatalf("Solve() with raised limit = %v, want nil", err)
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	in := knapsackInstance()
	in.Budgets[0] = -1
	if _, err := exact.Solve(in, exact.Options{}); err == nil {
		t.Fatal("Solve accepted an invalid instance")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	res, err := exact.Solve(&mmd.Instance{Budgets: []float64{1}}, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("empty instance OPT = %v, want 0", res.Value)
	}
}

// TestSolveBudgetSaturatingStream pins the boundary the adversarial
// generator lives on: a stream costing exactly the budget is the
// largest legal stream — admissible, and OPT takes it — while any
// overshoot is an invalid instance the model rejects outright rather
// than a stream the solver silently drops.
func TestSolveBudgetSaturatingStream(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "big", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility: []float64{3}, Loads: [][]float64{{3}}, Capacities: []float64{10},
		}},
		Budgets: []float64{1},
	}
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 || !res.Assignment.Has(0, 0) {
		t.Fatalf("cost==budget: Value = %v (assignment %v), want 3 with the stream carried",
			res.Value, res.Assignment.Range())
	}
	in.Streams[0].Costs[0] = 1.5
	if _, err := exact.Solve(in, exact.Options{}); err == nil {
		t.Fatal("cost>budget: Solve accepted an instance the model forbids")
	}
}

// TestSolveZeroInterestUsers: users exist but want nothing — the
// degenerate tenant shape the fleet generators can emit for tenants
// whose seed draws no interest in a channel.
func TestSolveZeroInterestUsers(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{1}},
			{Name: "b", Costs: []float64{2}},
		},
		Users: []mmd.User{
			{Utility: []float64{0, 0}, Loads: [][]float64{{0, 0}}, Capacities: []float64{1}},
			{Utility: []float64{0, 0}, Loads: [][]float64{{0, 0}}, Capacities: []float64{1}},
		},
		Budgets: []float64{10},
	}
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("zero-interest OPT = %v, want 0", res.Value)
	}
}

// TestSolveLargeStreamsAtFractionOne: when every stream costs about
// the whole budget, OPT can carry exactly one of them — the extreme
// point of E17's sweep, checked here directly against the solver.
func TestSolveLargeStreamsAtFractionOne(t *testing.T) {
	in, err := generator.LargeStreams{
		Streams: 8, Users: 3, Seed: 63, SizeFraction: 1,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Default jitter keeps every cost >= 0.9 of the budget, so any two
	// streams together overshoot: the optimum is a single stream.
	if got := len(res.Assignment.Range()); got != 1 {
		t.Fatalf("carried %d streams, want exactly 1: %v", got, res.Assignment.Range())
	}
	if err := res.Assignment.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("Value = %v, want > 0", res.Value)
	}
}
