// Package exact computes optimal MMD assignments on small instances by
// branch and bound. Experiments use it as the OPT reference when
// measuring approximation ratios (E1-E5); it is exponential and refuses
// instances above a configurable size.
package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mmd"
)

// ErrTooLarge is returned when the instance exceeds the search limits.
var ErrTooLarge = errors.New("exact: instance too large for exhaustive search")

// Options bounds the search.
type Options struct {
	// MaxStreams caps the stream count (default 20; hard limit 62).
	MaxStreams int
}

// Result is an optimal assignment and its value.
type Result struct {
	// Assignment is an optimal feasible assignment.
	Assignment *mmd.Assignment
	// Value is the optimal utility.
	Value float64
	// Nodes counts explored server-set search nodes (for tests and
	// performance reporting).
	Nodes int
}

type solver struct {
	in     *mmd.Instance
	nS, nU int

	// potential[s] = sum over users of w_u(s); suffixPotential[s] = sum
	// of potential over streams >= s (optimistic bound ignoring all
	// constraints).
	suffixPotential []float64

	// support[u] lists streams with w_u > 0, sorted by descending
	// utility for effective pruning in the per-user knapsack.
	support [][]int
	// suffixUser[u][idx] = total remaining utility from support[u][idx:].
	suffixUser [][]float64

	// memo[u] caches the per-user optimum keyed by the bitmask of the
	// chosen server set restricted to support[u].
	memo []map[uint64]userSolution

	chosen   []bool
	budgets  []float64 // residual server budgets
	best     float64
	bestSet  []bool
	nodes    int
	hasBound bool
}

type userSolution struct {
	value float64
	mask  uint64 // subset of support indices selected
}

// Solve returns an optimal assignment. The instance must pass Validate.
func Solve(in *mmd.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	maxStreams := opts.MaxStreams
	if maxStreams == 0 {
		maxStreams = 20
	}
	if in.NumStreams() > maxStreams || in.NumStreams() > 62 {
		return nil, fmt.Errorf("%d streams (limit %d): %w", in.NumStreams(), maxStreams, ErrTooLarge)
	}

	s := &solver{
		in:      in,
		nS:      in.NumStreams(),
		nU:      in.NumUsers(),
		chosen:  make([]bool, in.NumStreams()),
		budgets: append([]float64(nil), in.Budgets...),
		best:    -1,
	}
	s.suffixPotential = make([]float64, s.nS+1)
	for i := s.nS - 1; i >= 0; i-- {
		s.suffixPotential[i] = s.suffixPotential[i+1] + in.StreamUtility(i)
	}
	s.support = make([][]int, s.nU)
	s.suffixUser = make([][]float64, s.nU)
	s.memo = make([]map[uint64]userSolution, s.nU)
	for u := 0; u < s.nU; u++ {
		var sup []int
		for st, w := range in.Users[u].Utility {
			if w > 0 {
				sup = append(sup, st)
			}
		}
		// Descending utility order sharpens the knapsack bound.
		for i := 1; i < len(sup); i++ {
			for j := i; j > 0 && in.Users[u].Utility[sup[j]] > in.Users[u].Utility[sup[j-1]]; j-- {
				sup[j], sup[j-1] = sup[j-1], sup[j]
			}
		}
		s.support[u] = sup
		suf := make([]float64, len(sup)+1)
		for i := len(sup) - 1; i >= 0; i-- {
			suf[i] = suf[i+1] + in.Users[u].Utility[sup[i]]
		}
		s.suffixUser[u] = suf
		s.memo[u] = make(map[uint64]userSolution)
	}

	s.search(0, 0)

	assn := mmd.NewAssignment(s.nU)
	if s.bestSet != nil {
		for u := 0; u < s.nU; u++ {
			sol := s.userBest(u, s.bestSet)
			for i, st := range s.support[u] {
				if sol.mask&(1<<uint(i)) != 0 {
					assn.Add(u, st)
				}
			}
		}
	}
	if err := assn.CheckFeasible(in); err != nil {
		return nil, fmt.Errorf("exact: internal error, optimal assignment infeasible: %w", err)
	}
	val := assn.Utility(in)
	return &Result{Assignment: assn, Value: val, Nodes: s.nodes}, nil
}

// search decides stream s in or out.
func (s *solver) search(stream int, valueSoFar float64) {
	s.nodes++
	// Optimistic bound: everything decided so far is worth at most the
	// unconstrained per-user optimum of the chosen set, and the rest at
	// most the total remaining potential.
	if s.hasBound {
		ub := s.leafValueUpperBound() + s.suffixPotential[stream]
		if ub <= s.best {
			return
		}
	}
	if stream == s.nS {
		v := s.leafValue()
		if v > s.best {
			s.best = v
			s.bestSet = append([]bool(nil), s.chosen...)
			s.hasBound = true
		}
		_ = valueSoFar
		return
	}

	// Branch: include stream (if budgets allow), then exclude.
	fits := true
	for i, c := range s.in.Streams[stream].Costs {
		if c > s.budgets[i]+1e-12 {
			fits = false
			break
		}
	}
	if fits {
		for i, c := range s.in.Streams[stream].Costs {
			s.budgets[i] -= c
		}
		s.chosen[stream] = true
		s.search(stream+1, valueSoFar)
		s.chosen[stream] = false
		for i, c := range s.in.Streams[stream].Costs {
			s.budgets[i] += c
		}
	}
	s.search(stream+1, valueSoFar)
}

// leafValueUpperBound is a cheap optimistic value of the current partial
// selection: the full utility of every chosen stream, ignoring user
// capacities.
func (s *solver) leafValueUpperBound() float64 {
	total := 0.0
	for st := 0; st < s.nS; st++ {
		if s.chosen[st] {
			total += s.in.StreamUtility(st)
		}
	}
	return total
}

// leafValue computes the exact value of the current server set: the sum
// of per-user optimal sub-assignments.
func (s *solver) leafValue() float64 {
	total := 0.0
	for u := 0; u < s.nU; u++ {
		total += s.userBest(u, s.chosen).value
	}
	return total
}

// userBest returns the best feasible subset of the chosen streams for
// user u, memoized on the chosen-set mask restricted to u's support.
func (s *solver) userBest(u int, chosen []bool) userSolution {
	var key uint64
	for i, st := range s.support[u] {
		if chosen[st] {
			key |= 1 << uint(i)
		}
	}
	if sol, ok := s.memo[u][key]; ok {
		return sol
	}
	usr := &s.in.Users[u]
	loads := make([]float64, len(usr.Capacities))
	best := userSolution{}
	var cur userSolution
	var dfs func(idx int)
	dfs = func(idx int) {
		if cur.value > best.value {
			best = cur
		}
		if idx == len(s.support[u]) {
			return
		}
		if cur.value+s.suffixUser[u][idx] <= best.value {
			return // even taking everything left cannot improve
		}
		st := s.support[u][idx]
		if key&(1<<uint(idx)) != 0 {
			fits := true
			for j := range loads {
				if loads[j]+usr.Loads[j][st] > usr.Capacities[j]+1e-12 {
					fits = false
					break
				}
			}
			if fits {
				for j := range loads {
					loads[j] += usr.Loads[j][st]
				}
				cur.value += usr.Utility[st]
				cur.mask |= 1 << uint(idx)
				dfs(idx + 1)
				cur.mask &^= 1 << uint(idx)
				cur.value -= usr.Utility[st]
				for j := range loads {
					loads[j] -= usr.Loads[j][st]
				}
			}
		}
		dfs(idx + 1)
	}
	dfs(0)
	if math.IsNaN(best.value) {
		best.value = 0
	}
	s.memo[u][key] = best
	return best
}
