package httpserve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	videodist "repro"
	"repro/streamclient"
)

// renderFleet quiesces a fleet and returns its canonical renders.
func renderFleet(t *testing.T, c *videodist.Cluster) string {
	t.Helper()
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := fs.RenderTenants()
	if fs.Catalog != nil {
		out += fs.Catalog.Render()
	}
	return out
}

// sessionDial opens a /v1/stream connection claiming a resume session.
func sessionDial(t *testing.T, url, id string) *streamclient.Conn {
	t.Helper()
	conn, err := streamclient.DialWith(url, streamclient.DialOptions{
		Header: map[string]string{"X-Stream-Session": id},
	})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestStreamSessionResumeDedup pins the exactly-once resume protocol:
// a second connection claiming the same session may replay events at
// or below the server's watermark and gets dup acknowledgements for
// them instead of a second application, while events past the
// watermark apply normally.
func TestStreamSessionResumeDedup(t *testing.T) {
	c := buildFleet(t, defaultFleetConfig())
	ts := httptest.NewServer(NewHandlerOpts(c, Options{}))
	defer ts.Close()

	offer := func(seq int) streamclient.Event {
		return streamclient.Event{
			Seq: uint64(seq), Tenant: 0, Type: "catalog-offer",
			CatalogID: fmt.Sprintf("ch-%03d", seq-1),
		}
	}

	// First connection applies seq 1..6.
	conn := sessionDial(t, ts.URL, "resume-test")
	for seq := 1; seq <= 6; seq++ {
		if err := conn.Send(offer(seq)); err != nil {
			t.Fatal(err)
		}
	}
	for seq := 1; seq <= 6; seq++ {
		res, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if res.Seq != seq || res.Error != "" || res.Dup {
			t.Fatalf("conn1 result %d: %+v", seq, res)
		}
	}
	if err := conn.CloseSend(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Second connection resumes: replays 4..6 (a client that crashed
	// before those acks landed), then continues with 7..9.
	conn = sessionDial(t, ts.URL, "resume-test")
	for seq := 4; seq <= 9; seq++ {
		if err := conn.Send(offer(seq)); err != nil {
			t.Fatal(err)
		}
	}
	for seq := 4; seq <= 9; seq++ {
		res, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if res.Seq != seq || res.Error != "" {
			t.Fatalf("conn2 result %d: %+v", seq, res)
		}
		if wantDup := seq <= 6; res.Dup != wantDup {
			t.Fatalf("conn2 seq %d: dup = %v, want %v", seq, res.Dup, wantDup)
		}
	}
	if err := conn.CloseSend(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// No double-apply: a control fleet that saw each of the nine offers
	// exactly once renders byte-identically to the sessioned fleet.
	control := buildFleet(t, defaultFleetConfig())
	ctx := context.Background()
	for seq := 1; seq <= 9; seq++ {
		if _, err := control.OfferCatalogStream(ctx, 0, channelID(seq-1)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := renderFleet(t, c), renderFleet(t, control); got != want {
		t.Fatalf("sessioned fleet diverged from exactly-once control:\n got: %s\nwant: %s", got, want)
	}

	// A resume that skips past the watermark is a protocol error: the
	// client lost events the server never saw, and applying from the
	// gap would silently drop them.
	conn = sessionDial(t, ts.URL, "resume-test")
	if err := conn.Send(offer(11)); err != nil { // watermark is 9, next must be <= 10
		t.Fatal(err)
	}
	conn.Flush()
	res, err := conn.Recv()
	if err == nil && (res.Seq != -1 || res.Error == "") {
		t.Fatalf("gap resume accepted: %+v", res)
	}
	conn.Close()

	// Sessionless connections must not be sequenced: no seq, no dedup.
	plain, err := streamclient.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Send(streamclient.Event{Tenant: 1, Type: "offer", Stream: 3}); err != nil {
		t.Fatal(err)
	}
	if res, err := plain.Recv(); err != nil || res.Error != "" {
		t.Fatalf("plain stream after sessions: res=%+v err=%v", res, err)
	}
	plain.CloseSend()
	plain.Close()
}

// TestGovernorTripAndRecover drives the shed governor through a trip
// and a cool-off on a fake clock.
func TestGovernorTripAndRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	g := newGovernor(10*time.Millisecond, time.Second)
	g.now = func() time.Time { return now }

	for i := 0; i < govRecompute; i++ {
		g.observe(20 * time.Millisecond) // every ack slow: p99 far over threshold
	}
	if !g.shedding() {
		t.Fatal("governor did not trip after a full recompute window of slow acks")
	}
	now = now.Add(1100 * time.Millisecond)
	if g.shedding() {
		t.Fatal("governor still shedding after the cool-off")
	}
	// Fast probe traffic flushes the slow tail out of the rolling
	// window (re-tripping along the way is fine — the overload is still
	// visible in the p99 until enough fast acks displace it); once the
	// window is all-fast and the cool-off passes, the governor stays
	// open through further recomputes.
	for i := 0; i < 8*govRecompute; i++ {
		g.observe(time.Millisecond)
	}
	now = now.Add(1100 * time.Millisecond)
	if g.shedding() {
		t.Fatal("still shedding after the window flushed and the cool-off passed")
	}
	for i := 0; i < govRecompute; i++ {
		g.observe(time.Millisecond)
	}
	if g.shedding() {
		t.Fatal("governor re-tripped on an all-fast window")
	}
}

// TestShedOverload pins the end-to-end degradation contract: when the
// ack p99 crosses the configured ceiling the server sheds with a fast
// 503 + Retry-After instead of queueing, the stream client surfaces it
// as ErrOverloaded with the parsed hint, and traffic is admitted again
// after the cool-off.
func TestShedOverload(t *testing.T) {
	c := buildFleet(t, defaultFleetConfig())
	ts := httptest.NewServer(NewHandlerOpts(c, Options{
		ShedP99:    time.Nanosecond, // any real ack latency counts as overload
		RetryAfter: time.Second,
	}))
	defer ts.Close()

	for i := 0; i < govRecompute; i++ {
		if code := postEvent(t, ts, i%4, eventRequest{Type: "resolve", Stream: i % 12}, nil); code != http.StatusOK {
			t.Fatalf("warmup event %d: status %d", i, code)
		}
	}

	// The stream client sees the shed 503 as a typed, retryable error
	// carrying the parsed hint.
	conn, err := streamclient.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Recv()
	if !errors.Is(err, streamclient.ErrOverloaded) {
		t.Fatalf("stream dial under shed: err = %v, want ErrOverloaded", err)
	}
	var se *streamclient.StatusError
	if !errors.As(err, &se) || se.RetryAfter != time.Second || !se.Retryable() {
		t.Fatalf("StatusError not carrying the hint: %+v", se)
	}
	conn.Close()

	resp, err := http.Post(ts.URL+"/v1/tenants/0/events", "application/json",
		strings.NewReader(`{"type":"resolve","stream":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded server answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want %q", ra, "1")
	}

	// After the cool-off the next request is admitted (it is the probe
	// that decides whether shedding resumes).
	time.Sleep(1200 * time.Millisecond)
	if code := postEvent(t, ts, 0, eventRequest{Type: "resolve", Stream: 0}, nil); code != http.StatusOK {
		t.Fatalf("post-cool-off probe: status %d, want 200", code)
	}
}

// TestStreamWriteDeadlineSevers pins the stalled-consumer contract: a
// stream client that submits forever but never reads its results would
// park the response write and pin the handler (and its in-flight
// window) for the life of the process. With StreamWriteTimeout the
// write deadline severs the connection, every applied event settles
// through the normal worker path, and the fleet stays fully available.
func TestStreamWriteDeadlineSevers(t *testing.T) {
	c := buildFleet(t, defaultFleetConfig())
	ts := httptest.NewServer(NewHandlerOpts(c, Options{StreamWriteTimeout: 250 * time.Millisecond}))
	defer ts.Close()

	// A raw chunked request, so the client's receive buffer stays at
	// the kernel default and fills quickly (streamclient would tune it
	// up and hide the stall for much longer).
	host := strings.TrimPrefix(ts.URL, "http://")
	raw, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	bw := bufio.NewWriter(raw)
	fmt.Fprintf(bw, "POST /v1/stream HTTP/1.1\r\nHost: %s\r\n"+
		"Content-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n", host)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Pump events and never read a byte back. Once the response path's
	// buffers fill, the handler's write parks and the deadline fires;
	// the server then severs, and our writes start failing.
	var severed atomic.Bool
	go func() {
		for i := 0; i < 200000; i++ {
			line := fmt.Sprintf(`{"tenant":%d,"type":"resolve","stream":%d}`, i%4, i%12)
			chunk := fmt.Sprintf("%x\r\n%s\n\r\n", len(line)+1, line)
			raw.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := raw.Write([]byte(chunk)); err != nil {
				severed.Store(true)
				return
			}
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for !severed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never severed the stalled stream")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fleet is untouched by the severed consumer: the in-flight
	// window settled, and both the event path and a fresh stream work.
	if code := postEvent(t, ts, 0, eventRequest{Type: "resolve", Stream: 1}, nil); code != http.StatusOK {
		t.Fatalf("event endpoint after severance: status %d", code)
	}
	conn, err := streamclient.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(streamclient.Event{Tenant: 2, Type: "offer", Stream: 5}); err != nil {
		t.Fatal(err)
	}
	if res, err := conn.Recv(); err != nil || res.Error != "" {
		t.Fatalf("fresh stream after severance: res=%+v err=%v", res, err)
	}
	conn.CloseSend()
	conn.Close()
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("barrier after severance: %v", err)
	}
}
