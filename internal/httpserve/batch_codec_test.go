package httpserve

import (
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	videodist "repro"
)

// canonicalBatchBody is a 16-event wire batch in the canonical shape
// every known client emits (the benchkit driver marshals exactly this).
const canonicalBatchBody = `[` +
	`{"type":"offer","stream":0},{"type":"offer","stream":1},` +
	`{"type":"offer","stream":2},{"type":"offer","stream":3},` +
	`{"type":"depart","stream":1},{"type":"depart","stream":2},` +
	`{"type":"leave","user":0},{"type":"join","user":0},` +
	`{"type":"leave","user":1},{"type":"join","user":1},` +
	`{"type":"resolve","install":false},{"type":"resolve","install":true},` +
	`{"type":"offer","stream":4},{"type":"offer","stream":5},` +
	`{"type":"depart","stream":4},{"type":"resolve"}` +
	`]`

// stdlibBatchEvents decodes a batch body the way the pre-pooling
// handler did: stdlib array decode, then the shared conversion.
func stdlibBatchEvents(t *testing.T, body string) ([]videodist.ClusterEvent, []string) {
	t.Helper()
	var reqs []eventRequest
	if err := json.Unmarshal([]byte(body), &reqs); err != nil {
		t.Fatalf("stdlib decode of %q: %v", body, err)
	}
	var s batchScratch
	for _, req := range reqs {
		if err := appendBatchEvent(&s, req.Type, req.Stream, req.User, req.Install, req.CatalogID); err != nil {
			t.Fatalf("convert %q: %v", body, err)
		}
	}
	return s.events, s.types
}

// TestFastParseBatchMatchesStdlib pins the batch array scanner against
// the stdlib path: every body it accepts must produce exactly the
// events the stdlib decode produces, and everything it rejects must be
// either non-canonical (stdlib fallback handles it) or carry the same
// rejection the stdlib path reports.
func TestFastParseBatchMatchesStdlib(t *testing.T) {
	accept := []string{
		canonicalBatchBody,
		`[]`,
		` [ ] `,
		`[{"type":"offer","stream":7}]`,
		`[{"type":"catalog-offer","catalog_id":"ch-003"},{"type":"catalog-depart","catalog_id":"ch-003"}]`,
		"[\n  {\"type\": \"offer\", \"stream\": 2},\n  {\"type\": \"leave\", \"user\": 1}\n]\n",
	}
	for _, body := range accept {
		var s batchScratch
		ok, err := fastParseBatch([]byte(body), &s)
		if !ok || err != nil {
			t.Fatalf("fast path rejected canonical body %q (ok=%v err=%v)", body, ok, err)
		}
		wantEvents, wantTypes := stdlibBatchEvents(t, body)
		if len(wantEvents) == 0 {
			wantEvents, wantTypes = s.events[:0], s.types[:0] // both empty
		}
		if !reflect.DeepEqual(s.events, wantEvents) || !reflect.DeepEqual(s.types, wantTypes) {
			t.Errorf("fast parse of %q =\n%+v %v\nstdlib path =\n%+v %v",
				body, s.events, s.types, wantEvents, wantTypes)
		}
	}

	// Bodies the fast path must hand to the stdlib decoder.
	fallback := []string{
		`{"type":"offer"}`,                            // not an array
		`[{"type":"offer","stream":3}`,                // unterminated
		`[{"type":"offer","stream":3}] trail`,         // trailing garbage
		`[{"type":"of\u0066er","stream":3}]`,          // escape in string
		`[{"type":"offer","nested":{"a":1}}]`,         // nested object
		`[{"type":"offer","stream":[1]}]`,             // nested array
		`[{"type":"offer","stream":3},]`,              // trailing comma
		`[{"type":"mystery"}]`,                        // unknown token: stdlib shapes the error
		`[{"type":"offer","stream":123456789012345}]`, // fast-int overflow
	}
	for _, body := range fallback {
		var s batchScratch
		if ok, _ := fastParseBatch([]byte(body), &s); ok {
			t.Errorf("fast path accepted non-canonical body %q", body)
		}
	}

	// Semantic rejections surface from the fast path with the same
	// message the stdlib path produces.
	var s batchScratch
	ok, err := fastParseBatch([]byte(`[{"type":"offer"},{"type":"catalog-offer"}]`), &s)
	if !ok || err == nil || !strings.Contains(err.Error(), "batch event 1: catalog-offer needs catalog_id") {
		t.Fatalf("missing catalog_id: ok=%v err=%v", ok, err)
	}
}

// TestAppendBatchResponseMatchesStdlibDecode pins the hand-rolled batch
// response encoder: every object it emits must decode into exactly the
// eventResponse the pre-pooling handler's stdlib marshal decoded into.
func TestAppendBatchResponseMatchesStdlibDecode(t *testing.T) {
	cases := []struct {
		typ string
		res videodist.EventResult
	}{
		{"offer", videodist.EventResult{Type: videodist.ClusterStreamArrival,
			Offer: videodist.OfferResult{Accepted: true, Subscribers: []int{2, 5}, Utility: 7.25}}},
		{"offer", videodist.EventResult{Type: videodist.ClusterStreamArrival}}, // rejected: nil -> null
		{"depart", videodist.EventResult{Type: videodist.ClusterStreamDeparture,
			Depart: videodist.DepartResult{Removed: true, Subscribers: []int{0}}}},
		{"leave", videodist.EventResult{Type: videodist.ClusterUserLeave,
			Churn: videodist.ChurnResult{Changed: true, Streams: []int{1, 4}}}},
		{"join", videodist.EventResult{Type: videodist.ClusterUserJoin}},
		{"resolve", videodist.EventResult{Type: videodist.ClusterResolve,
			Resolve: videodist.ResolveResult{Installed: true, OnlineValue: 1.5, OfflineValue: 2e-7}}},
		{"resolve", videodist.EventResult{Type: videodist.ClusterResolve,
			Err: errors.New(`re-solve failed: "quoted" & ünïcode`)}},
		{"catalog-offer", videodist.EventResult{Type: videodist.ClusterStreamArrival,
			CatalogID: "ch-001",
			Catalog: videodist.CatalogResult{Admitted: true, Subscribers: []int{3}, Utility: 4.5,
				Refs: 2, SharedWith: []int{1}, CostScale: 0.25, FullCost: 10, CostCharged: 2.5}}},
		{"catalog-depart", videodist.EventResult{Type: videodist.ClusterStreamDeparture,
			CatalogID: "ch-001",
			Catalog:   videodist.CatalogResult{Removed: true, Refs: 0, Evicted: true}}},
	}
	for i, tc := range cases {
		line := appendBatchResponse(nil, tc.typ, tc.res)
		var got eventResponse
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("case %d: emitted invalid JSON %q: %v", i, line, err)
		}
		// The reference: build the eventResponse exactly as the
		// pre-pooling handler did and round-trip it through the stdlib.
		ref := eventResponse{Type: tc.typ}
		switch {
		case tc.res.CatalogID != "":
			v := tc.res.Catalog
			ref.Catalog = &v
		case tc.res.Type == videodist.ClusterStreamArrival:
			v := tc.res.Offer
			ref.Offer = &v
		case tc.res.Type == videodist.ClusterStreamDeparture:
			v := tc.res.Depart
			ref.Depart = &v
		case tc.res.Type == videodist.ClusterUserLeave, tc.res.Type == videodist.ClusterUserJoin:
			v := tc.res.Churn
			ref.Churn = &v
		case tc.res.Type == videodist.ClusterResolve:
			v := tc.res.Resolve
			ref.Resolve = &v
		}
		if tc.res.Err != nil {
			ref.Error = tc.res.Err.Error()
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		var want eventResponse
		if err := json.Unmarshal(refJSON, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d:\nhand-rolled %s\n-> %+v\nstdlib      %s\n-> %+v",
				i, line, got, refJSON, want)
		}
	}
}

// TestBatchCodecAllocationFree pins the pooled batch codec: once the
// scratch is warm, decoding a canonical 16-event batch body and
// encoding its 16 responses allocate nothing at all — the slices come
// from the scratch and go back, and the interned wire tokens mean
// storing a type name stores no new string. This is the regression bar
// for the batch endpoint's handler-side overhead (the remaining batch16
// allocations live in ApplyBatch's settlement plumbing, not the codec).
func TestBatchCodecAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counters are unreliable under -race")
	}
	body := []byte(canonicalBatchBody)
	s := batchPool.Get().(*batchScratch)
	defer batchPool.Put(s)

	// Warm: one parse grows the event and type slices to capacity.
	s.events, s.types = s.events[:0], s.types[:0]
	if ok, err := fastParseBatch(body, s); !ok || err != nil {
		t.Fatalf("warmup parse: ok=%v err=%v", ok, err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		s.events, s.types = s.events[:0], s.types[:0]
		if ok, err := fastParseBatch(body, s); !ok || err != nil {
			t.Fatalf("parse: ok=%v err=%v", ok, err)
		}
	}); avg != 0 {
		t.Fatalf("warm batch decode allocates %.2f per batch, want 0", avg)
	}

	// Encode: one synthetic result per decoded event, with every slice
	// field populated so the int-slice encoder runs too.
	results := make([]videodist.EventResult, len(s.events))
	for i, ev := range s.events {
		res := videodist.EventResult{Type: ev.Type}
		switch ev.Type {
		case videodist.ClusterStreamArrival:
			res.Offer = videodist.OfferResult{Accepted: true, Subscribers: []int{1, 2}, Utility: 3.5}
		case videodist.ClusterStreamDeparture:
			res.Depart = videodist.DepartResult{Removed: true, Subscribers: []int{1}}
		case videodist.ClusterUserLeave, videodist.ClusterUserJoin:
			res.Churn = videodist.ChurnResult{Changed: true, Streams: []int{0, 4}}
		case videodist.ClusterResolve:
			res.Resolve = videodist.ResolveResult{Installed: true, OnlineValue: 1.25, OfflineValue: 0.5}
		}
		results[i] = res
	}
	encode := func() {
		out := append(s.out[:0], '[')
		for i, res := range results {
			if i > 0 {
				out = append(out, ',')
			}
			out = appendBatchResponse(out, s.types[i], res)
		}
		s.out = append(out, ']', '\n')
	}
	encode() // warm the output buffer
	if avg := testing.AllocsPerRun(200, encode); avg != 0 {
		t.Fatalf("warm batch encode allocates %.2f per batch, want 0", avg)
	}
}

// TestBatchFallbackDecodeStreams pins the stdlib half of the batch
// codec: decodeBatchFallback walks the array with a json.Decoder into
// the scratch's single reused eventRequest, so a non-canonical batch
// never materializes an []eventRequest. The residual cost is one
// string per element (the decoded type name — the stdlib always copies
// strings out of its buffer) plus a small constant for the decoder
// itself. The byte bound is the teeth: whole-array decoding costs
// ~130 B/event here (backing array plus growth copies) versus ~15 for
// the streaming walk, so reintroducing it blows straight past 48·n.
func TestBatchFallbackDecodeStreams(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counters are unreliable under -race")
	}
	const n = 256
	// Stream ids past the fast scanner's integer range keep the body
	// off the canonical path, so this exercises exactly the route a
	// non-canonical batch takes in serving.
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"type":"offer","stream":` + strconv.Itoa(1234567890123456+i) + `}`)
	}
	sb.WriteString("]")
	s := batchPool.Get().(*batchScratch)
	defer batchPool.Put(s)
	s.body = append(s.body[:0], sb.String()...)

	s.events, s.types = s.events[:0], s.types[:0]
	if ok, _ := fastParseBatch(s.body, s); ok {
		t.Fatal("fast path accepted the oversized stream ids; fallback not exercised")
	}

	decode := func() {
		s.events, s.types = s.events[:0], s.types[:0]
		if badJSON, semantic := decodeBatchFallback(s); badJSON != nil || semantic != nil {
			t.Fatalf("fallback decode: %v / %v", badJSON, semantic)
		}
	}
	decode() // warm the event and type slices
	if len(s.events) != n || s.events[0].Type != videodist.ClusterStreamArrival {
		t.Fatalf("fallback decoded %d events (first %+v), want %d offers", len(s.events), s.events[0], n)
	}
	if avg := testing.AllocsPerRun(100, decode); avg > n+24 {
		t.Fatalf("warm fallback decode allocates %.1f per %d-event batch, want <= %d (one string per element plus decoder overhead)", avg, n, n+24)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	decode()
	runtime.ReadMemStats(&after)
	if got, max := after.TotalAlloc-before.TotalAlloc, uint64(48*n); got > max {
		t.Fatalf("warm fallback decode allocates %d bytes per %d-event batch, want <= %d (whole-array decode would materialize the batch)", got, n, max)
	}
}
