package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	videodist "repro"
	"repro/internal/generator"
	"repro/streamclient"
)

// fleetConfig mirrors the mmdserve fleet shape: same-shaped CableTV
// tenants with every channel catalog-bound as "ch-NNN".
type fleetConfig struct {
	tenants, shards, channels, gateways int
	seed                                int64
	costModel                           videodist.CatalogCostModel // nil = no catalog
	walDir                              string                     // "" = no WAL
}

func defaultFleetConfig() fleetConfig {
	return fleetConfig{
		tenants: 4, shards: 2, channels: 12, gateways: 4, seed: 21,
		costModel: videodist.CatalogIsolated{},
	}
}

func buildFleet(t *testing.T, cfg fleetConfig) *videodist.Cluster {
	t.Helper()
	tenants := make([]videodist.ClusterTenant, cfg.tenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: cfg.channels, Gateways: cfg.gateways,
			Seed: cfg.seed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = videodist.ClusterTenant{Instance: in}
	}
	opts := videodist.ClusterOptions{Shards: cfg.shards, BatchSize: 4}
	if cfg.walDir != "" {
		opts.WAL = &videodist.WALOptions{Dir: cfg.walDir}
	}
	if cfg.costModel != nil {
		opts.Catalog = &videodist.CatalogOptions{
			Streams:   videodist.IdentityCatalogBindings(cfg.tenants, cfg.channels, channelID),
			CostModel: cfg.costModel,
		}
	}
	c, err := videodist.NewCluster(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func channelID(s int) videodist.CatalogID {
	return videodist.CatalogID(fmt.Sprintf("ch-%03d", s))
}

// postEvent POSTs one event and decodes the response into out (which
// may be nil when only the status code matters).
func postEvent(t *testing.T, ts *httptest.Server, tenant int, req eventRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/tenants/%d/events", ts.URL, tenant),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip is the acceptance check for the HTTP front end:
// driving the same event sequence over HTTP and in process yields the
// same typed OfferResults, and the fleet snapshot round-trips.
func TestHTTPRoundTrip(t *testing.T) {
	cfg := defaultFleetConfig()
	ref := buildFleet(t, cfg)
	c := buildFleet(t, cfg)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	ctx := context.Background()
	for s := 0; s < cfg.channels; s++ {
		want, err := ref.OfferStream(ctx, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		var got eventResponse
		if code := postEvent(t, ts, 1, eventRequest{Type: "offer", Stream: s}, &got); code != http.StatusOK {
			t.Fatalf("offer %d: status %d", s, code)
		}
		if got.Offer == nil {
			t.Fatalf("offer %d: no offer result in %+v", s, got)
		}
		if !reflect.DeepEqual(*got.Offer, want) {
			t.Fatalf("offer %d over HTTP = %+v, in-process = %+v", s, *got.Offer, want)
		}
	}

	// Churn and resolve round-trip through the same codec.
	var leave eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "leave", User: 0}, &leave); code != http.StatusOK {
		t.Fatalf("leave: status %d", code)
	}
	if leave.Churn == nil || !leave.Churn.Changed {
		t.Fatalf("leave = %+v", leave)
	}
	var res eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "resolve", Install: true}, &res); code != http.StatusOK {
		t.Fatalf("resolve: status %d", code)
	}
	if res.Resolve == nil || res.Resolve.OfflineValue <= 0 {
		t.Fatalf("resolve = %+v", res)
	}

	// Snapshot: the HTTP fleet must mirror an in-process snapshot of
	// the same sequence.
	if _, err := ref.UserLeave(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Resolve(ctx, 1, videodist.ResolveOptions{Install: true}); err != nil {
		t.Fatal(err)
	}
	wantFS, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/fleet/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var gotFS videodist.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&gotFS); err != nil {
		t.Fatal(err)
	}
	if gotFS.Utility != wantFS.Utility || gotFS.Offered != wantFS.Offered ||
		gotFS.Installs != wantFS.Installs || !gotFS.AllFeasible {
		t.Fatalf("snapshot over HTTP = %+v\nin-process = %+v", gotFS, wantFS)
	}
	if gotFS.Tenants[1].StreamsOffered != cfg.channels {
		t.Fatalf("tenant 1 offered = %d, want %d", gotFS.Tenants[1].StreamsOffered, cfg.channels)
	}
}

// TestHTTPErrorMapping pins the sentinel-to-status translation and the
// 400 paths of the codec.
func TestHTTPErrorMapping(t *testing.T) {
	c := buildFleet(t, defaultFleetConfig())
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	var e errorResponse
	if code := postEvent(t, ts, 99, eventRequest{Type: "offer"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d (%+v)", code, e)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "frobnicate"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/zero/events", "application/json",
		bytes.NewReader([]byte(`{"type":"offer"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant id: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/tenants/0/events", "application/json",
		bytes.NewReader([]byte(`{not json`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}

	// Closed cluster maps to 503.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "offer"}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("closed cluster: status %d", code)
	}
}

// batchParityEvents is the mixed single-tenant schedule shared by the
// batch and stream parity tests. Catalog events are kept out of this
// shared mix on purpose: the stream parity test replays it for every
// tenant over one pipelined connection, where cross-tenant catalog
// reference counts legitimately depend on settlement timing. The batch
// parity test appends its own single-tenant catalog section, and the
// stream test pins catalog behavior with its single-tenant tail.
func batchParityEvents(channels int) []eventRequest {
	var events []eventRequest
	for s := 0; s < channels; s++ {
		events = append(events, eventRequest{Type: "offer", Stream: s})
	}
	return append(events,
		eventRequest{Type: "depart", Stream: 2},
		eventRequest{Type: "leave", User: 1},
		eventRequest{Type: "offer", Stream: 2},
		eventRequest{Type: "join", User: 1},
		eventRequest{Type: "resolve"},
	)
}

// TestHTTPBatchParity is the batched-ingestion acceptance check: one
// POST to /v1/tenants/{id}/events:batch must yield exactly the same
// positional results and final fleet state as N single posts of the
// same events — while the whole batch crosses the shard queue as one
// message (the server-side coalescing RunWorkload enjoys).
func TestHTTPBatchParity(t *testing.T) {
	cfg := defaultFleetConfig()
	single := buildFleet(t, cfg)
	batched := buildFleet(t, cfg)
	singleTS := httptest.NewServer(NewHandler(single))
	defer singleTS.Close()
	batchTS := httptest.NewServer(NewHandler(batched))
	defer batchTS.Close()

	// The shared mix plus a single-tenant catalog section (catalog
	// events are first-class batch citizens; the schedule avoids
	// depart-then-reoffer of one CatalogID inside a single batch, whose
	// pipelined acquires price against the pre-batch sharing state and
	// can shift eviction timing relative to single posts).
	events := append(batchParityEvents(cfg.channels),
		eventRequest{Type: "catalog-offer", CatalogID: "ch-003"},
		eventRequest{Type: "catalog-offer", CatalogID: "ch-005"},
		eventRequest{Type: "catalog-depart", CatalogID: "ch-003"},
	)

	// Reference: N single posts.
	var want []eventResponse
	for _, ev := range events {
		var resp eventResponse
		if code := postEvent(t, singleTS, 0, ev, &resp); code != http.StatusOK {
			t.Fatalf("single %+v: status %d", ev, code)
		}
		want = append(want, resp)
	}

	// One batch post.
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(batchTS.URL+"/v1/tenants/0/events:batch", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var got []eventResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d: batch %+v vs single %+v", i, got[i], want[i])
		}
	}

	// Final state parity plus the coalescing evidence: the batch fleet
	// processed the same events in fewer, larger admission windows.
	sfs, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sfs.RenderTenants() != bfs.RenderTenants() {
		t.Fatalf("tenant tables diverge:\n--- batch\n%s\n--- single\n%s",
			bfs.RenderTenants(), sfs.RenderTenants())
	}
	singleBatches, batchBatches := 0, 0
	for _, st := range sfs.ShardStats {
		singleBatches += st.Batches
	}
	for _, st := range bfs.ShardStats {
		batchBatches += st.Batches
	}
	if batchBatches >= singleBatches {
		t.Fatalf("batch ingestion used %d admission windows, singles used %d — no coalescing",
			batchBatches, singleBatches)
	}

	// Error paths: unknown type inside the batch, a catalog event with
	// no identity.
	for _, bad := range []string{
		`[{"type":"frobnicate"}]`,
		`[{"type":"catalog-offer"}]`,
		`{not json`,
	} {
		resp, err := http.Post(batchTS.URL+"/v1/tenants/0/events:batch", "application/json",
			bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad batch %q: status %d", bad, resp.StatusCode)
		}
	}
}

// TestHTTPReshard drives a live shard-count change over the admin
// endpoint: traffic before and after the cutover, with the final state
// pinned against a fixed-layout reference fleet (the shard-count
// invariance the cluster differential tests guarantee, observed
// through the wire).
func TestHTTPReshard(t *testing.T) {
	cfg := defaultFleetConfig()
	ref := buildFleet(t, cfg)
	cfg.walDir = t.TempDir()
	c := buildFleet(t, cfg)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()
	refTS := httptest.NewServer(NewHandler(ref))
	defer refTS.Close()

	drive := func(phase int) {
		for tn := 0; tn < cfg.tenants; tn++ {
			for s := 0; s < cfg.channels/2; s++ {
				ev := eventRequest{Type: "offer", Stream: (phase*cfg.channels/2 + s) % cfg.channels}
				if s%3 == 2 {
					ev = eventRequest{Type: "catalog-offer", CatalogID: string(channelID(s))}
				}
				for _, srv := range []*httptest.Server{ts, refTS} {
					if code := postEvent(t, srv, tn, ev, nil); code != http.StatusOK {
						t.Fatalf("phase %d tenant %d %+v: status %d", phase, tn, ev, code)
					}
				}
			}
		}
	}
	reshard := func(body string) (int, reshardResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/reshard", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out reshardResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	drive(0)
	if code, out := reshard(`{"shards":4}`); code != http.StatusOK || out.Shards != 4 {
		t.Fatalf("reshard to 4: status %d, %+v", code, out)
	}
	drive(1)
	// Clamped: more shards than tenants runs one worker per tenant.
	if code, out := reshard(`{"shards":64}`); code != http.StatusOK || out.Shards != cfg.tenants {
		t.Fatalf("reshard to 64: status %d, %+v (want clamp to %d)", code, out, cfg.tenants)
	}
	drive(2)

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rfs, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.RenderTenants() != rfs.RenderTenants() {
		t.Fatalf("post-reshard tables diverge from fixed-layout reference:\n--- resharded\n%s\n--- reference\n%s",
			fs.RenderTenants(), rfs.RenderTenants())
	}
	if fs.Catalog == nil || rfs.Catalog == nil || fs.Catalog.Render() != rfs.Catalog.Render() {
		t.Fatal("post-reshard catalog diverges from fixed-layout reference")
	}

	// Error taxonomy: zero and malformed bodies are 400s; a fleet with
	// no log to replay is a 409.
	if code, _ := reshard(`{"shards":0}`); code != http.StatusBadRequest {
		t.Fatalf("reshard to 0: status %d, want 400", code)
	}
	if code, _ := reshard(`{nope`); code != http.StatusBadRequest {
		t.Fatalf("malformed reshard: status %d, want 400", code)
	}
	resp, err := http.Post(refTS.URL+"/v1/admin/reshard", "application/json",
		strings.NewReader(`{"shards":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reshard without WAL: status %d, want 409", resp.StatusCode)
	}
}

// TestHTTPCatalog drives the catalog surface over the wire: shared
// admissions with discounts, the /v1/catalog snapshot, and the 404
// taxonomy (unknown id, catalog disabled).
func TestHTTPCatalog(t *testing.T) {
	cfg := defaultFleetConfig()
	cfg.costModel = videodist.CatalogSharedOrigin{ReplicationFraction: 0.25}
	c := buildFleet(t, cfg)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	var first eventResponse
	if code := postEvent(t, ts, 0, eventRequest{Type: "catalog-offer", CatalogID: "ch-003"}, &first); code != http.StatusOK {
		t.Fatalf("catalog-offer: status %d", code)
	}
	if first.Catalog == nil || !first.Catalog.Admitted || first.Catalog.CostScale != 1 {
		t.Fatalf("first catalog offer = %+v", first)
	}
	var second eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "catalog-offer", CatalogID: "ch-003"}, &second); code != http.StatusOK {
		t.Fatalf("second catalog-offer: status %d", code)
	}
	if second.Catalog == nil || !second.Catalog.Admitted ||
		second.Catalog.CostScale != 0.25 || second.Catalog.Refs != 2 {
		t.Fatalf("second catalog offer = %+v", second.Catalog)
	}

	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog snapshot: status %d", resp.StatusCode)
	}
	var snap videodist.CatalogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Model != "shared-origin" || snap.ActiveShared != 1 || snap.OriginSavings <= 0 {
		t.Fatalf("catalog snapshot = %+v", snap)
	}

	var dep eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "catalog-depart", CatalogID: "ch-003"}, &dep); code != http.StatusOK {
		t.Fatalf("catalog-depart: status %d", code)
	}
	if dep.Catalog == nil || !dep.Catalog.Removed || dep.Catalog.Refs != 1 || dep.Catalog.Evicted {
		t.Fatalf("catalog depart = %+v", dep.Catalog)
	}

	var e errorResponse
	if code := postEvent(t, ts, 0, eventRequest{Type: "catalog-offer", CatalogID: "nope"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown catalog id: status %d (%+v)", code, e)
	}

	// A fleet built with the catalog off 404s the whole surface.
	off := cfg
	off.costModel = nil
	bare := buildFleet(t, off)
	bareTS := httptest.NewServer(NewHandler(bare))
	defer bareTS.Close()
	resp2, err := http.Get(bareTS.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("catalog-off snapshot: status %d", resp2.StatusCode)
	}
	if code := postEvent(t, bareTS, 0, eventRequest{Type: "catalog-offer", CatalogID: "ch-000"}, &e); code != http.StatusNotFound {
		t.Fatalf("catalog-off offer: status %d", code)
	}
}

// TestHTTPStreamParity is the serving API v4 acceptance check at the
// wire level: the same schedule submitted over one persistent
// /v1/stream connection, as :batch posts, and as single posts must
// yield positionally identical per-event results and byte-identical
// per-tenant tables — including catalog events, which every ingestion
// surface carries.
func TestHTTPStreamParity(t *testing.T) {
	cfg := defaultFleetConfig()
	single := buildFleet(t, cfg)
	streamed := buildFleet(t, cfg)
	batched := buildFleet(t, cfg)
	singleTS := httptest.NewServer(NewHandler(single))
	defer singleTS.Close()
	streamTS := httptest.NewServer(NewHandler(streamed))
	defer streamTS.Close()
	batchTS := httptest.NewServer(NewHandler(batched))
	defer batchTS.Close()

	// The schedule: the batch parity mix for every tenant, plus a
	// single-tenant catalog tail.
	var schedule []streamclient.Event
	for ti := 0; ti < cfg.tenants; ti++ {
		for _, ev := range batchParityEvents(cfg.channels) {
			schedule = append(schedule, streamclient.Event{
				Tenant: ti, Type: ev.Type, Stream: ev.Stream, User: ev.User, Install: ev.Install,
			})
		}
	}
	// The catalog tail stays on one tenant: all its registry
	// transitions settle through one shard worker's FIFO, so the
	// pipelined run reports exactly the reference counts the serial
	// single-post run sees. (Cross-tenant pricing under pipelining
	// legitimately depends on settlement timing — the ROADMAP's
	// concurrent-first-admission nuance — and is pinned serially by the
	// cluster-level tests instead.) The depart/offer/depart shape
	// exercises release, fresh admission, and eviction.
	catalogTail := []streamclient.Event{
		{Tenant: 0, Type: "catalog-depart", CatalogID: "ch-005"},
		{Tenant: 0, Type: "catalog-offer", CatalogID: "ch-005"},
		{Tenant: 0, Type: "catalog-depart", CatalogID: "ch-005"},
	}

	// Reference: single posts (events + catalog tail).
	var want []eventResponse
	for _, ev := range append(append([]streamclient.Event{}, schedule...), catalogTail...) {
		req := eventRequest{Type: ev.Type, Stream: ev.Stream, User: ev.User,
			Install: ev.Install, CatalogID: ev.CatalogID}
		var resp eventResponse
		if code := postEvent(t, singleTS, ev.Tenant, req, &resp); code != http.StatusOK {
			t.Fatalf("single %+v: status %d", ev, code)
		}
		want = append(want, resp)
	}

	// Streamed: everything through one pipelined connection.
	conn, err := streamclient.Dial(streamTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	all := append(append([]streamclient.Event{}, schedule...), catalogTail...)
	sendErr := make(chan error, 1)
	go func() {
		for _, ev := range all {
			if err := conn.Send(ev); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- conn.CloseSend()
	}()
	var got []streamclient.Result
	for {
		res, err := conn.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream returned %d results, want %d", len(got), len(want))
	}
	for i, res := range got {
		if res.Seq != i || res.Error != "" {
			t.Fatalf("result %d: %+v", i, res)
		}
		w := want[i]
		if res.Type != w.Type ||
			!reflect.DeepEqual(res.Offer, w.Offer) || !reflect.DeepEqual(res.Depart, w.Depart) ||
			!reflect.DeepEqual(res.Churn, w.Churn) || !reflect.DeepEqual(res.Resolve, w.Resolve) ||
			!reflect.DeepEqual(res.Catalog, w.Catalog) {
			t.Fatalf("result %d: stream %+v vs single %+v", i, res, w)
		}
	}

	// Batched: the shared schedule per tenant; the catalog tail rides
	// the batch endpoint too, one event per batch — its
	// depart/offer/depart of a single CatalogID must settle between
	// acquires to match the reference run (the pipelined-acquire
	// caveat), which one-event batches preserve.
	for ti := 0; ti < cfg.tenants; ti++ {
		var evs []eventRequest
		for _, ev := range schedule {
			if ev.Tenant == ti {
				evs = append(evs, eventRequest{Type: ev.Type, Stream: ev.Stream,
					User: ev.User, Install: ev.Install})
			}
		}
		body, err := json.Marshal(evs)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(fmt.Sprintf("%s/v1/tenants/%d/events:batch", batchTS.URL, ti),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch tenant %d: status %d", ti, resp.StatusCode)
		}
	}
	for _, ev := range catalogTail {
		body, err := json.Marshal([]eventRequest{{Type: ev.Type, CatalogID: ev.CatalogID}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(fmt.Sprintf("%s/v1/tenants/%d/events:batch", batchTS.URL, ev.Tenant),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch catalog tail %+v: status %d", ev, resp.StatusCode)
		}
	}

	sfs, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stfs, err := streamed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stfs.Render(), sfs.Render(); got != want {
		t.Fatalf("streamed snapshot diverged from single posts:\n--- stream\n%s\n--- single\n%s", got, want)
	}
	if got, want := bfs.RenderTenants(), sfs.RenderTenants(); got != want {
		t.Fatalf("batched tenant tables diverged:\n--- batch\n%s\n--- single\n%s", got, want)
	}
}

// TestHTTPStreamInBandErrors pins the per-line error contract and the
// protocol-violation tail line.
func TestHTTPStreamInBandErrors(t *testing.T) {
	c := buildFleet(t, defaultFleetConfig())
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	conn, err := streamclient.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Data-level failure: in-band, stream continues.
	if err := conn.Send(streamclient.Event{Tenant: 99, Type: "offer"}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(streamclient.Event{Tenant: 0, Type: "offer", Stream: 1}); err != nil {
		t.Fatal(err)
	}
	// Protocol violation: unknown type ends the stream with a tail line.
	if err := conn.Send(streamclient.Event{Tenant: 0, Type: "frobnicate"}); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Recv()
	if err != nil || res.Seq != 0 || !strings.Contains(res.Error, "unknown tenant") {
		t.Fatalf("seq 0 = %+v, %v", res, err)
	}
	res, err = conn.Recv()
	if err != nil || res.Seq != 1 || res.Error != "" || res.Offer == nil {
		t.Fatalf("seq 1 = %+v, %v", res, err)
	}
	res, err = conn.Recv()
	if err != nil || res.Seq != -1 || !strings.Contains(res.Error, "frobnicate") {
		t.Fatalf("tail line = %+v, %v", res, err)
	}
	if _, err := conn.Recv(); err != io.EOF {
		t.Fatalf("after tail line: %v, want io.EOF", err)
	}
}

// TestHTTPStreamDisconnect is the wire half of the disconnect contract:
// a client that vanishes mid-stream (socket closed with results unread)
// must leave the fleet consistent — every event the server read settles
// on its shard worker, catalog references track carriage exactly, and a
// full by-ID drain ends at zero refs. Run under -race in CI.
func TestHTTPStreamDisconnect(t *testing.T) {
	cfg := defaultFleetConfig()
	cfg.costModel = videodist.CatalogSharedOrigin{ReplicationFraction: 0.25}
	c := buildFleet(t, cfg)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := streamclient.Dial(u.Host)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline catalog offers for every tenant and channel, read just a
	// couple of results, then slam the connection shut.
	sent := 0
	for ti := 0; ti < cfg.tenants; ti++ {
		for s := 0; s < cfg.channels; s++ {
			if err := conn.Send(streamclient.Event{
				Tenant: ti, Type: "catalog-offer", CatalogID: string(channelID(s)),
			}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := conn.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// The handler notices the dead client asynchronously; wait until the
	// fleet quiesces (no new offers landing across a poll interval) at
	// refs == carriage, then drain.
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	lastOffered := -1
	for {
		fs, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		refs, carried := 0, 0
		for _, e := range fs.Catalog.Entries {
			refs += e.Refs
		}
		for _, tsn := range fs.Tenants {
			carried += tsn.ActiveStreams
		}
		if fs.Offered == lastOffered && refs == carried && refs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never quiesced: %d refs, %d carried, %d offered", refs, carried, fs.Offered)
		}
		lastOffered = fs.Offered
		time.Sleep(25 * time.Millisecond)
	}
	for ti := 0; ti < cfg.tenants; ti++ {
		for s := 0; s < cfg.channels; s++ {
			if _, err := c.DepartCatalogStream(ctx, ti, channelID(s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	final, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range final.Catalog.Entries {
		if e.Refs != 0 {
			t.Fatalf("%s: %d refs leaked after disconnect + drain", e.ID, e.Refs)
		}
	}
}
