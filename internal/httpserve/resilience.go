package httpserve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	videodist "repro"
	"repro/internal/metrics"
)

// Options configures the resilience behaviors of the handler. The zero
// value is the pre-chaos handler: no shedding, no stream write
// deadline, no recovered session watermarks.
type Options struct {
	// ShedP99 is the overload threshold: when the rolling p99 of ack
	// latency on the event and batch endpoints crosses it, the server
	// sheds — event, batch, and new stream requests get a fast 503 with
	// a Retry-After instead of queueing behind a saturated fleet. Block
	// backpressure keeps per-connection flow control; shedding is the
	// fleet-wide analog (shed, don't collapse). 0 disables.
	ShedP99 time.Duration
	// RetryAfter is the hint sent while shedding and the cool-off
	// before traffic is admitted again to probe (default 1s).
	RetryAfter time.Duration
	// StreamWriteTimeout bounds each write on a /v1/stream response. A
	// consumer that stops reading parks the response write; without a
	// deadline that pins the handler goroutine and its whole in-flight
	// window forever. On timeout the connection is severed and every
	// submitted event still settles through the worker-FIFO path
	// (references included). 0 disables.
	StreamWriteTimeout time.Duration
	// Sessions seeds the exactly-once resume watermarks from a
	// RecoveryReport.SessionWatermarks, so a client replaying into a
	// recovered server still cannot double-apply an event.
	Sessions map[string]uint64
}

// server is the handler state behind NewHandlerOpts: the cluster, the
// overload governor, and the resume-session table. The data plane
// still lives in the cluster session — this state is only about the
// transport (who may reconnect as whom, and when to say "not now").
type server struct {
	c        *videodist.Cluster
	opts     Options
	gov      *governor // nil when shedding is disabled
	sessions sessionTable
}

// NewHandlerOpts returns the ingestion front end with resilience
// options; NewHandler(c) is NewHandlerOpts(c, Options{}).
func NewHandlerOpts(c *videodist.Cluster, opts Options) http.Handler {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	s := &server{c: c, opts: opts}
	s.sessions.seed = opts.Sessions
	if opts.ShedP99 > 0 {
		s.gov = newGovernor(opts.ShedP99, opts.RetryAfter)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{id}/events", s.handleEvent)
	mux.HandleFunc("POST /v1/tenants/{id}/events:batch", s.handleBatch)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("POST /v1/admin/reshard", func(w http.ResponseWriter, r *http.Request) {
		handleReshard(c, w, r)
	})
	mux.HandleFunc("GET /v1/fleet/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(c, w)
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		handleCatalog(c, w)
	})
	return mux
}

// shed writes the fast 503 + Retry-After and reports true when the
// governor is tripped. Callers return immediately on true — the point
// of shedding is to not touch the saturated data plane at all.
func (s *server) shed(w http.ResponseWriter) bool {
	if s.gov == nil || !s.gov.shedding() {
		return false
	}
	s.writeShed(w)
	return true
}

// writeShed writes the shed 503 unconditionally.
func (s *server) writeShed(w http.ResponseWriter) {
	secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("overloaded: ack p99 over %v, shedding; retry after %ds", s.opts.ShedP99, secs))
}

// observe feeds one successful ack latency to the governor.
func (s *server) observe(start time.Time) {
	if s.gov != nil {
		s.gov.observe(time.Since(start))
	}
}

// govRecompute is how many observations ride between p99 recomputes —
// the quantile sorts its window, so it runs at a sampled cadence.
const govRecompute = 32

// governor trips load shedding from a rolling ack-latency quantile.
// While tripped, requests are rejected before reaching the cluster, so
// no new observations arrive; once RetryAfter passes, traffic is
// admitted again and the next recompute decides whether the overload
// has actually drained (fresh fast acks push the old tail out of the
// window) or shedding re-trips.
type governor struct {
	threshold  time.Duration
	retryAfter time.Duration
	window     *metrics.Rolling
	now        func() time.Time // test hook

	mu        sync.Mutex
	obs       int
	shedUntil time.Time
}

func newGovernor(threshold, retryAfter time.Duration) *governor {
	return &governor{
		threshold:  threshold,
		retryAfter: retryAfter,
		window:     metrics.NewRolling(256),
		now:        time.Now,
	}
}

func (g *governor) observe(d time.Duration) {
	g.window.Observe(d.Seconds())
	g.mu.Lock()
	g.obs++
	if g.obs%govRecompute == 0 && g.window.Quantile(0.99) >= g.threshold.Seconds() {
		g.shedUntil = g.now().Add(g.retryAfter)
	}
	g.mu.Unlock()
}

func (g *governor) shedding() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now().Before(g.shedUntil)
}

// session is one resumable stream identity. connMu serializes the
// connections claiming the identity: a resumed connection cannot
// proceed until the previous handler has fully drained its results,
// which is exactly the point where the watermark covers every applied
// event — the lock is the happens-before edge that makes the
// ack-time watermark safe to read.
type session struct {
	connMu    sync.Mutex
	watermark atomic.Uint64 // highest client seq applied (and acked or drained)
}

// sessionTable lazily materializes sessions by ID, seeding watermarks
// from recovery. Entries are never evicted: a watermark is the proof an
// event was applied, and forgetting it would re-admit a replay. The
// cost is one uint64 + mutex per session identity ever seen, which is
// fine for fleets of long-lived ingest clients (the intended shape).
type sessionTable struct {
	mu   sync.Mutex
	m    map[string]*session
	seed map[string]uint64
}

func (t *sessionTable) get(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.m[id]
	if !ok {
		if t.m == nil {
			t.m = make(map[string]*session)
		}
		sess = &session{}
		sess.watermark.Store(t.seed[id])
		t.m[id] = sess
	}
	return sess
}
