//go:build race

package httpserve

// raceEnabled reports that this test binary was built with -race; the
// allocation-budget tests skip themselves there (the race runtime adds
// its own allocations to the counters AllocsPerRun reads).
const raceEnabled = true
