// Package httpserve is the HTTP/JSON ingestion front end over the
// serving API (a thin codec — no state lives in the handlers; the
// cluster session is the whole contract):
//
//	POST /v1/tenants/{id}/events        one event, one response (v2/v3)
//	POST /v1/tenants/{id}/events:batch  a JSON array as one shard message (v3)
//	POST /v1/stream                     persistent NDJSON session (v4)
//	POST /v1/admin/reshard              live shard-count change (v5, needs a WAL)
//	GET  /v1/fleet/snapshot             barrier + aggregated fleet state
//	GET  /v1/catalog                    fleet catalog registry state
//
// Events decode into the typed per-operation calls and the typed
// results marshal straight back; sentinel errors map onto HTTP status
// codes (writeTransportError). The /v1/stream endpoint upgrades the
// request to a full-duplex NDJSON session over Cluster.OpenStream: one
// Event line in, one Result line out, in submission order, with the
// stream's bounded in-flight window as the flow-control point (see
// repro/streamclient for the wire structs and the Go client).
//
// NewHandlerOpts adds the resilience layer (v6): exactly-once resume
// for streams that claim an X-Stream-Session identity (a WAL-backed
// seq watermark dedups replays after reconnects and crashes), a write
// deadline that sheds stalled stream consumers, and an overload
// governor that converts block-backpressure into fast 503 +
// Retry-After when the rolling ack p99 crosses a threshold.
//
// It lives in internal/ so cmd/mmdserve, the benchmarks
// (internal/benchkit), and the tests share one handler; cmd/mmdserve
// is the thin main around it.
package httpserve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	videodist "repro"
	"repro/streamclient"
)

// eventRequest is the wire form of one tenant event on the per-tenant
// endpoints (the tenant index rides in the URL).
type eventRequest struct {
	// Type selects the operation: "offer", "depart", "leave", "join",
	// "resolve", "catalog-offer", or "catalog-depart".
	Type string `json:"type"`
	// Stream is the stream index (offer, depart).
	Stream int `json:"stream,omitempty"`
	// User is the gateway index (leave, join).
	User int `json:"user,omitempty"`
	// Install asks a resolve to install the offline assignment.
	Install bool `json:"install,omitempty"`
	// CatalogID is the fleet-wide stream identity (catalog-offer,
	// catalog-depart).
	CatalogID string `json:"catalog_id,omitempty"`
}

// eventResponse is the wire form of a typed result; exactly the field
// matching the request type is set. Error carries a per-event failure
// inside a batch response (the batch itself still succeeds).
type eventResponse struct {
	Type    string                   `json:"type"`
	Offer   *videodist.OfferResult   `json:"offer,omitempty"`
	Depart  *videodist.DepartResult  `json:"depart,omitempty"`
	Churn   *videodist.ChurnResult   `json:"churn,omitempty"`
	Resolve *videodist.ResolveResult `json:"resolve,omitempty"`
	Catalog *videodist.CatalogResult `json:"catalog,omitempty"`
	Error   string                   `json:"error,omitempty"`
}

// errorResponse is the wire form of a failure.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP/JSON ingestion front end over a cluster
// with default resilience options (no shedding, no stream write
// deadline, no recovered session watermarks); see NewHandlerOpts.
func NewHandler(c *videodist.Cluster) http.Handler {
	return NewHandlerOpts(c, Options{})
}

func (s *server) handleEvent(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	c := s.c
	tenant, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", r.PathValue("id")))
		return
	}
	var req eventRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad event body: %w", err))
		return
	}
	ctx := r.Context()
	start := time.Now()
	resp := eventResponse{Type: req.Type}
	switch req.Type {
	case "offer":
		res, err := c.OfferStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Offer = &res
	case "depart":
		res, err := c.DepartStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Depart = &res
	case "leave":
		res, err := c.UserLeave(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "join":
		res, err := c.UserJoin(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "resolve":
		res, err := c.Resolve(ctx, tenant, videodist.ResolveOptions{Install: req.Install})
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Resolve = &res
	case "catalog-offer":
		res, err := c.OfferCatalogStream(ctx, tenant, videodist.CatalogID(req.CatalogID))
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Catalog = &res
	case "catalog-depart":
		res, err := c.DepartCatalogStream(ctx, tenant, videodist.CatalogID(req.CatalogID))
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Catalog = &res
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown event type %q", req.Type))
		return
	}
	s.observe(start)
	writeJSON(w, http.StatusOK, resp)
}

// batchEventTypes maps the wire names accepted by the batch endpoint to
// routed event types. Catalog events are first-class batch citizens:
// ApplyBatch prices all of a batch's catalog arrivals in one registry
// round trip and the shard worker settles them in one more, so a
// catalog offer in a batch is cheaper, not forbidden, relative to the
// per-event endpoint.
var batchEventTypes = map[string]videodist.ClusterEvent{
	"offer":          {Type: videodist.ClusterStreamArrival},
	"depart":         {Type: videodist.ClusterStreamDeparture},
	"leave":          {Type: videodist.ClusterUserLeave},
	"join":           {Type: videodist.ClusterUserJoin},
	"resolve":        {Type: videodist.ClusterResolve},
	"catalog-offer":  {Type: videodist.ClusterStreamArrival},
	"catalog-depart": {Type: videodist.ClusterStreamDeparture},
}

// batchScratch is the per-request working set of the batch endpoint,
// pooled across requests: the raw body, the decoded events, the wire
// type name per event (interned tokens on the fast path, so storing
// them allocates nothing), the stdlib-fallback decode target, and the
// hand-encoded response bytes. Every field is recycled by the handler
// that took it from the pool (the receiver-recycles rule) — nothing
// here escapes the request: ApplyBatch copies the event slice before
// returning, and w.Write copies the response buffer.
type batchScratch struct {
	body   []byte
	events []videodist.ClusterEvent
	types  []string
	req    eventRequest // fallback decode target, reused per element
	rd     bytes.Reader // fallback decoder source, reset onto body
	out    []byte
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// readFullBody reads r to EOF into buf's backing array, growing it only
// when the request is larger than any the scratch has seen.
func readFullBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// appendBatchEvent validates and appends one decoded wire event to the
// scratch, shared by the fast and fallback parse paths so both produce
// identical routed events and identical rejection messages.
func appendBatchEvent(s *batchScratch, typ string, stream, user int, install bool, catalogID string) error {
	i := len(s.events)
	ev, ok := batchEventTypes[typ]
	if !ok {
		return fmt.Errorf("batch event %d: unknown event type %q", i, typ)
	}
	if typ == "catalog-offer" || typ == "catalog-depart" {
		if catalogID == "" {
			return fmt.Errorf("batch event %d: %s needs catalog_id", i, typ)
		}
		ev.CatalogID = videodist.CatalogID(catalogID)
	}
	ev.Stream, ev.User, ev.Install = stream, user, install
	s.events = append(s.events, ev)
	s.types = append(s.types, typ)
	return nil
}

// fastParseBatch scans a canonical batch body — a JSON array of the
// same canonical flat objects the stream's line scanner accepts — into
// the scratch without allocating (catalog IDs excepted; those strings
// outlive the buffer). ok false means "not provably canonical — rerun
// through the stdlib decoder", never an error of its own; err reports a
// semantic rejection (unknown type, missing catalog_id) found on a body
// the scanner did fully accept.
func fastParseBatch(body []byte, s *batchScratch) (ok bool, err error) {
	i, n := 0, len(body)
	ws := func() {
		for i < n {
			if ch := body[i]; ch != ' ' && ch != '\t' && ch != '\r' && ch != '\n' {
				return
			}
			i++
		}
	}
	ws()
	if i >= n || body[i] != '[' {
		return false, nil
	}
	i++
	ws()
	if i < n && body[i] == ']' {
		i++
		ws()
		return i == n, nil
	}
	for {
		ws()
		if i >= n || body[i] != '{' {
			return false, nil
		}
		start := i
		// Find the element's closing brace: canonical objects are flat
		// with escape-free strings, so a string flag is enough state —
		// nesting or escapes mean "not canonical", bail to the stdlib.
		i++
		inStr := false
		for i < n {
			switch ch := body[i]; {
			case inStr:
				if ch == '\\' {
					return false, nil
				}
				inStr = ch != '"'
			case ch == '"':
				inStr = true
			case ch == '{' || ch == '[':
				return false, nil
			case ch == '}':
				goto closed
			}
			i++
		}
		return false, nil
	closed:
		i++
		req, elemOK := fastParseEvent(body[start:i])
		if !elemOK {
			return false, nil
		}
		if err := appendBatchEvent(s, req.Type, req.Stream, req.User, req.Install, req.CatalogID); err != nil {
			return true, err
		}
		ws()
		if i < n && body[i] == ',' {
			i++
			continue
		}
		if i < n && body[i] == ']' {
			i++
			ws()
			return i == n, nil
		}
		return false, nil
	}
}

// decodeBatchFallback is the stdlib half of the batch codec, for
// exotic-but-valid JSON the canonical scanner bailed on: a
// json.Decoder walks the array token by token, decoding each element
// into the scratch's single reused eventRequest and appending it
// immediately — the batch is never materialized as an []eventRequest,
// so a 10k-event body costs one decode target, not 10k. badJSON
// reports malformed JSON (the stdlib's message, like the old
// whole-array Unmarshal); semantic reports a body that parsed but was
// rejected (unknown type, missing catalog_id).
func decodeBatchFallback(bs *batchScratch) (badJSON, semantic error) {
	bs.rd.Reset(bs.body)
	dec := json.NewDecoder(&bs.rd)
	tok, err := dec.Token()
	if err != nil {
		return err, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("json: cannot unmarshal %v into batch array", tok), nil
	}
	for dec.More() {
		bs.req = eventRequest{}
		if err := dec.Decode(&bs.req); err != nil {
			return err, nil
		}
		if err := appendBatchEvent(bs, bs.req.Type, bs.req.Stream, bs.req.User, bs.req.Install, bs.req.CatalogID); err != nil {
			return nil, err
		}
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return err, nil
	}
	// Unmarshal rejected trailing data; so does the streaming decoder.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("json: trailing data after batch array"), nil
	}
	return nil, nil
}

// appendBatchResponse appends one event's eventResponse object exactly
// as the stdlib would encode it (field order, omitempty semantics), so
// decoded responses stay identical to the pre-pooling handler's — the
// batch parity test pins this against the single-event endpoint.
func appendBatchResponse(buf []byte, typ string, res videodist.EventResult) []byte {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, typ)
	switch {
	case res.CatalogID != "":
		buf = append(buf, `,"catalog":`...)
		buf = appendCatalogResult(buf, res.Catalog)
	case res.Type == videodist.ClusterStreamArrival:
		buf = append(buf, `,"offer":{"Accepted":`...)
		buf = strconv.AppendBool(buf, res.Offer.Accepted)
		buf = append(buf, `,"Subscribers":`...)
		buf = appendIntSlice(buf, res.Offer.Subscribers)
		buf = append(buf, `,"Utility":`...)
		buf = appendFloat(buf, res.Offer.Utility)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterStreamDeparture:
		buf = append(buf, `,"depart":{"Removed":`...)
		buf = strconv.AppendBool(buf, res.Depart.Removed)
		buf = append(buf, `,"Subscribers":`...)
		buf = appendIntSlice(buf, res.Depart.Subscribers)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterUserLeave, res.Type == videodist.ClusterUserJoin:
		buf = append(buf, `,"churn":{"Changed":`...)
		buf = strconv.AppendBool(buf, res.Churn.Changed)
		buf = append(buf, `,"Streams":`...)
		buf = appendIntSlice(buf, res.Churn.Streams)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterResolve:
		buf = append(buf, `,"resolve":{"Installed":`...)
		buf = strconv.AppendBool(buf, res.Resolve.Installed)
		buf = append(buf, `,"OnlineValue":`...)
		buf = appendFloat(buf, res.Resolve.OnlineValue)
		buf = append(buf, `,"OfflineValue":`...)
		buf = appendFloat(buf, res.Resolve.OfflineValue)
		buf = append(buf, '}')
	}
	if res.Err != nil {
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, res.Err.Error())
	}
	return append(buf, '}')
}

// handleBatch applies a JSON array of events as one Cluster.ApplyBatch
// call: the whole sequence crosses the tenant's shard queue as a single
// message, so remote callers get the same arrival coalescing the
// RunWorkload replay path enjoys. The response is one eventResponse per
// event, positionally.
//
// The codec is the batch twin of the stream endpoint's: a pooled
// scratch carries the body, the decoded events, and the hand-encoded
// response across requests, so a warm steady state decodes and encodes
// a canonical batch without allocating in the handler (the stdlib
// decoder remains the fallback for exotic-but-valid JSON). Before the
// pooling, each batch request paid a fresh decoder, three fresh slices,
// one heap escape per result, and a reflective marshal of the whole
// response.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	c := s.c
	tenant, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", r.PathValue("id")))
		return
	}
	bs := batchPool.Get().(*batchScratch)
	defer batchPool.Put(bs)
	bs.body, err = readFullBody(r.Body, bs.body[:0])
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	bs.events, bs.types = bs.events[:0], bs.types[:0]
	ok, perr := fastParseBatch(bs.body, bs)
	if !ok && perr == nil {
		bs.events, bs.types = bs.events[:0], bs.types[:0]
		var badJSON error
		badJSON, perr = decodeBatchFallback(bs)
		if badJSON != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", badJSON))
			return
		}
	}
	if perr != nil {
		writeError(w, http.StatusBadRequest, perr)
		return
	}
	start := time.Now()
	results, err := c.ApplyBatch(r.Context(), tenant, bs.events)
	if err != nil {
		writeTransportError(w, err)
		return
	}
	s.observe(start)
	out := append(bs.out[:0], '[')
	for i, res := range results {
		if i > 0 {
			out = append(out, ',')
		}
		out = appendBatchResponse(out, bs.types[i], res)
	}
	out = append(out, ']', '\n')
	bs.out = out
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// readLine returns the next newline-terminated line (newline and any
// trailing \r stripped; blank lines come back empty for the caller to
// skip). Long lines are stitched together in *scratch. On io.EOF the
// final unterminated line, if any, is returned alongside the error.
func readLine(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		*scratch = append((*scratch)[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = br.ReadSlice('\n')
			*scratch = append(*scratch, line...)
		}
		line = *scratch
	}
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line, err
}

// parseStreamEvent decodes one wire line: the hand-rolled scanner
// handles the canonical single-line shape every known client emits
// (flat object, plain-ASCII strings) without allocation, and anything
// it cannot prove canonical falls back to the stdlib decoder — exotic
// but valid JSON still works, invalid JSON still fails with the
// stdlib's message.
func parseStreamEvent(line []byte) (videodist.ClusterEvent, uint64, error) {
	if req, ok := fastParseEvent(line); ok {
		ev, err := streamEvent(req)
		return ev, req.Seq, err
	}
	var req streamclient.Event
	if err := json.Unmarshal(line, &req); err != nil {
		return videodist.ClusterEvent{}, 0, fmt.Errorf("bad stream line: %w", err)
	}
	ev, err := streamEvent(req)
	return ev, req.Seq, err
}

// fastParseEvent scans a canonical wire line (a flat JSON object of
// known keys with integer, boolean, or escape-free string values). ok
// false means "not provably canonical — use the stdlib", never an
// error of its own.
func fastParseEvent(line []byte) (streamclient.Event, bool) {
	var ev streamclient.Event
	i, n := 0, len(line)
	skip := func() {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
	}
	skip()
	if i >= n || line[i] != '{' {
		return ev, false
	}
	i++
	skip()
	if i < n && line[i] == '}' {
		return ev, i+1 == n || allWS(line[i+1:])
	}
	for {
		// Key.
		skip()
		if i >= n || line[i] != '"' {
			return ev, false
		}
		i++
		ks := i
		for i < n && line[i] != '"' {
			if line[i] == '\\' {
				return ev, false
			}
			i++
		}
		if i >= n {
			return ev, false
		}
		key := line[ks:i]
		i++
		skip()
		if i >= n || line[i] != ':' {
			return ev, false
		}
		i++
		skip()
		// Value, typed by key.
		switch string(key) {
		case "seq":
			v, ds := uint64(0), i
			for i < n && line[i] >= '0' && line[i] <= '9' {
				v = v*10 + uint64(line[i]-'0')
				i++
			}
			if i == ds || i-ds > 18 {
				return ev, false // empty, or large enough to overflow
			}
			if line[ds] == '0' && i-ds > 1 {
				return ev, false // leading zero: invalid JSON, let the stdlib reject it
			}
			ev.Seq = v
		case "tenant", "stream", "user":
			neg := false
			if i < n && line[i] == '-' {
				neg = true
				i++
			}
			v, ds := 0, i
			for i < n && line[i] >= '0' && line[i] <= '9' {
				v = v*10 + int(line[i]-'0')
				i++
			}
			if i == ds || i-ds > 9 {
				return ev, false // empty, or large enough to overflow
			}
			if line[ds] == '0' && i-ds > 1 {
				return ev, false // leading zero: invalid JSON, let the stdlib reject it
			}
			if neg {
				v = -v
			}
			switch key[0] {
			case 't':
				ev.Tenant = v
			case 's':
				ev.Stream = v
			default:
				ev.User = v
			}
		case "type", "catalog_id":
			if i >= n || line[i] != '"' {
				return ev, false
			}
			i++
			vs := i
			for i < n && line[i] != '"' {
				if line[i] == '\\' || line[i] >= 0x7f {
					return ev, false
				}
				i++
			}
			if i >= n {
				return ev, false
			}
			if key[0] == 't' {
				ev.Type = wireToken(line[vs:i])
				if ev.Type == "" {
					return ev, false // unknown token: let the stdlib path shape the error
				}
			} else {
				ev.CatalogID = string(line[vs:i])
			}
			i++
		case "install":
			switch {
			case bytes.HasPrefix(line[i:], []byte("true")):
				ev.Install = true
				i += 4
			case bytes.HasPrefix(line[i:], []byte("false")):
				i += 5
			default:
				return ev, false
			}
		default:
			return ev, false
		}
		skip()
		if i < n && line[i] == ',' {
			i++
			continue
		}
		if i < n && line[i] == '}' {
			i++
			return ev, i == n || allWS(line[i:])
		}
		return ev, false
	}
}

// wireToken interns a wire type token so the hot path stores no new
// string; unknown tokens return "".
func wireToken(b []byte) string {
	switch string(b) {
	case "offer":
		return "offer"
	case "depart":
		return "depart"
	case "leave":
		return "leave"
	case "join":
		return "join"
	case "resolve":
		return "resolve"
	case "catalog-offer":
		return "catalog-offer"
	case "catalog-depart":
		return "catalog-depart"
	}
	return ""
}

// allWS reports whether b is only JSON whitespace.
func allWS(b []byte) bool {
	for _, ch := range b {
		if ch != ' ' && ch != '\t' && ch != '\r' && ch != '\n' {
			return false
		}
	}
	return true
}

// streamEvent maps one wire line onto a routed cluster event. Catalog
// events carry their fleet identity through: the stream's Submit runs
// the catalog acquire protocol and the shard worker settles the
// reference in FIFO order (the batch endpoint prices its catalog
// events the same way, one registry round trip per batch).
func streamEvent(req streamclient.Event) (videodist.ClusterEvent, error) {
	ev, ok := batchEventTypes[req.Type]
	if !ok {
		return videodist.ClusterEvent{}, fmt.Errorf("unknown event type %q", req.Type)
	}
	if req.Type == "catalog-offer" || req.Type == "catalog-depart" {
		ev.CatalogID = videodist.CatalogID(req.CatalogID)
	}
	ev.Tenant, ev.Stream, ev.User, ev.Install = req.Tenant, req.Stream, req.User, req.Install
	return ev, nil
}

// wireTypeName maps a routed type (plus the catalog mark) back onto
// its wire name.
func wireTypeName(res videodist.StreamResult) string {
	switch {
	case res.CatalogID != "" && res.Type == videodist.ClusterStreamArrival:
		return "catalog-offer"
	case res.CatalogID != "" && res.Type == videodist.ClusterStreamDeparture:
		return "catalog-depart"
	case res.Type == videodist.ClusterStreamArrival:
		return "offer"
	case res.Type == videodist.ClusterStreamDeparture:
		return "depart"
	case res.Type == videodist.ClusterUserLeave:
		return "leave"
	case res.Type == videodist.ClusterUserJoin:
		return "join"
	case res.Type == videodist.ClusterResolve:
		return "resolve"
	}
	return ""
}

// appendResultLine appends one result's NDJSON wire line (trailing
// newline included) to buf. It is the hand-rolled twin of marshaling a
// streamclient.Result — the stream hot path writes tens of thousands
// of these per second, and reflection-based encoding was a top-three
// cost in the ingestion profile. Decoded values must stay identical to
// the stdlib encoding of the same result (the HTTP parity test pins
// this), so slice fields follow stdlib semantics exactly: nil
// marshals as null on always-emitted fields and empty slices are
// dropped on omitempty fields.
func appendResultLine(buf []byte, res videodist.StreamResult) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, int64(res.Seq), 10)
	if typ := wireTypeName(res); typ != "" {
		// Wire type names are fixed ASCII tokens; no escaping needed.
		buf = append(buf, `,"type":"`...)
		buf = append(buf, typ...)
		buf = append(buf, '"')
	}
	switch {
	case res.Err != nil:
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, res.Err.Error())
	case res.CatalogID != "":
		buf = append(buf, `,"catalog":`...)
		buf = appendCatalogResult(buf, res.Catalog)
	case res.Type == videodist.ClusterStreamArrival:
		buf = append(buf, `,"offer":{"Accepted":`...)
		buf = strconv.AppendBool(buf, res.Offer.Accepted)
		buf = append(buf, `,"Subscribers":`...)
		buf = appendIntSlice(buf, res.Offer.Subscribers)
		buf = append(buf, `,"Utility":`...)
		buf = appendFloat(buf, res.Offer.Utility)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterStreamDeparture:
		buf = append(buf, `,"depart":{"Removed":`...)
		buf = strconv.AppendBool(buf, res.Depart.Removed)
		buf = append(buf, `,"Subscribers":`...)
		buf = appendIntSlice(buf, res.Depart.Subscribers)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterUserLeave, res.Type == videodist.ClusterUserJoin:
		buf = append(buf, `,"churn":{"Changed":`...)
		buf = strconv.AppendBool(buf, res.Churn.Changed)
		buf = append(buf, `,"Streams":`...)
		buf = appendIntSlice(buf, res.Churn.Streams)
		buf = append(buf, '}')
	case res.Type == videodist.ClusterResolve:
		buf = append(buf, `,"resolve":{"Installed":`...)
		buf = strconv.AppendBool(buf, res.Resolve.Installed)
		buf = append(buf, `,"OnlineValue":`...)
		buf = appendFloat(buf, res.Resolve.OnlineValue)
		buf = append(buf, `,"OfflineValue":`...)
		buf = appendFloat(buf, res.Resolve.OfflineValue)
		buf = append(buf, '}')
	}
	return append(buf, "}\n"...)
}

// appendCatalogResult appends a CatalogResult object following its
// json tags (refs always present, the rest omitempty).
func appendCatalogResult(buf []byte, v videodist.CatalogResult) []byte {
	buf = append(buf, `{"refs":`...)
	buf = strconv.AppendInt(buf, int64(v.Refs), 10)
	if v.Admitted {
		buf = append(buf, `,"admitted":true`...)
	}
	if v.Removed {
		buf = append(buf, `,"removed":true`...)
	}
	if len(v.Subscribers) > 0 {
		buf = append(buf, `,"subscribers":`...)
		buf = appendIntSlice(buf, v.Subscribers)
	}
	if v.Utility != 0 {
		buf = append(buf, `,"utility":`...)
		buf = appendFloat(buf, v.Utility)
	}
	if len(v.SharedWith) > 0 {
		buf = append(buf, `,"shared_with":`...)
		buf = appendIntSlice(buf, v.SharedWith)
	}
	if v.CostScale != 0 {
		buf = append(buf, `,"cost_scale":`...)
		buf = appendFloat(buf, v.CostScale)
	}
	if v.FullCost != 0 {
		buf = append(buf, `,"full_cost":`...)
		buf = appendFloat(buf, v.FullCost)
	}
	if v.CostCharged != 0 {
		buf = append(buf, `,"cost_charged":`...)
		buf = appendFloat(buf, v.CostCharged)
	}
	if v.Evicted {
		buf = append(buf, `,"evicted":true`...)
	}
	return append(buf, '}')
}

// appendIntSlice appends s with stdlib semantics: nil encodes as null,
// anything else as an array.
func appendIntSlice(buf []byte, s []int) []byte {
	if s == nil {
		return append(buf, `null`...)
	}
	buf = append(buf, '[')
	for i, v := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return append(buf, ']')
}

// appendFloat appends a finite float as a JSON number.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendJSONString appends s as a JSON string, escaping through the
// stdlib only when needed (error messages are plain ASCII in practice).
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if ch := s[i]; ch < 0x20 || ch == '"' || ch == '\\' || ch >= 0x7f {
			quoted, _ := json.Marshal(s)
			return append(buf, quoted...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// streamWindow is the /v1/stream in-flight window. It is deliberately
// much deeper than the StreamOptions default: under the WAL's group
// commit the window is what amortizes the fsync — every event applied
// while the committer's previous fsync was in flight rides the next
// one, so the window must cover more events than one disk-sync latency
// admits (~1.3k at measured rates) or the pipeline stalls on the disk
// instead of the CPU. Memory cost is two pointer slots per entry.
const streamWindow = 16384

// handleStream is the serving API v4 endpoint: a persistent NDJSON
// session over one HTTP request. The request body is read line by line
// and pipelined onto a Cluster.OpenStream session; a writer goroutine
// streams each settled result back as its own flushed NDJSON line, in
// submission order. The stream's bounded in-flight window is the flow
// control: a client that stops reading results eventually parks the
// reader loop (window full), which parks the TCP receive window —
// backpressure end to end with no unbounded buffering.
//
// Data-level failures (unknown tenant, unknown catalog stream) come
// back in-band as per-line errors; a protocol violation (malformed
// line, unknown event type) stops reading, drains the in-flight
// results, and appends a final Error-only line. A dropped client
// cancels the request context; every event already submitted still
// applies and settles on its shard worker (catalog references
// included), so disconnects leak nothing.
//
// With an X-Stream-Session header the connection claims a resumable
// identity (exactly-once resume): every line must then carry a
// client-assigned contiguous 1-based seq, result seqs come back in the
// client's numbering, and the session's watermark — the highest seq
// applied — dedups replays after a reconnect. A replayed line at or
// below the watermark is acknowledged with a {"seq":N,"dup":true}
// line instead of being re-applied; a gap past watermark+1 is a
// protocol error (the client lost events it never sent). Connections
// claiming the same session serialize: a resume waits until the
// previous handler has drained every settled result, because the drain
// is what completes the watermark. For the same reason the
// session-mode writer keeps draining (writes disabled) after the
// client dies — an applied event must advance the watermark before the
// next resume reads it, or the replay would double-apply.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.gov != nil && s.gov.shedding() {
		// A shed stream refuses the connection outright. Connection:
		// close (plus an eager flush) is what actually gets the 503 on
		// the wire: the chunked request body is never consumed, and
		// net/http holds the buffered response while it waits to drain
		// the body for connection reuse — a wait that would deadlock
		// against a client which won't close its send side before it
		// has seen a status line.
		w.Header().Set("Connection", "close")
		s.writeShed(w)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		return
	}
	sid := r.Header.Get("X-Stream-Session")
	var sess *session
	var base uint64 // client seq of the first event this conn may submit
	if sid != "" {
		sess = s.sessions.get(sid)
		sess.connMu.Lock()
		defer sess.connMu.Unlock()
		base = sess.watermark.Load() + 1
	}
	sc, err := s.c.OpenStream(videodist.StreamOptions{Window: streamWindow})
	if err != nil {
		writeTransportError(w, err)
		return
	}
	defer sc.Close()
	rc := http.NewResponseController(w)
	// HTTP/1 servers half-close by default; the stream needs to read
	// request-body lines while writing response lines. (Errors mean the
	// transport is already duplex or cannot be — either way we proceed.)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// Session mode drains to completion regardless of the client: the
	// watermark must cover every applied event before the handler exits
	// (and the next resume's dedup reads it). The drain is bounded — the
	// reader stops submitting once ctx dies, so at most the in-flight
	// window settles.
	recvCtx := ctx
	if sess != nil {
		recvCtx = context.Background()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			// Writing is over (clean EOF, dead client, or write timeout):
			// unblock a reader parked in readLine or Submit so the
			// handler can finish.
			cancel()
			_ = rc.SetReadDeadline(time.Now())
		}()
		var buf []byte
		writeOK := true
		for {
			res, err := sc.Recv(recvCtx)
			if err != nil {
				// io.EOF after CloseSend, or the client went away.
				return
			}
			// Adaptive flushing: batch every result that has already
			// settled into one write — a single syscall carries many
			// lines under load — and flush exactly when nothing more is
			// ready, because then a client may be blocked on the lines
			// written so far. The burst is bounded by the stream's
			// in-flight window.
			if sess != nil {
				res.Seq = int(base + uint64(res.Seq))
				sess.watermark.Store(uint64(res.Seq))
			}
			buf = appendResultLine(buf[:0], res)
			for {
				res, ok := sc.TryRecv()
				if !ok {
					break
				}
				if sess != nil {
					res.Seq = int(base + uint64(res.Seq))
					sess.watermark.Store(uint64(res.Seq))
				}
				buf = appendResultLine(buf, res)
			}
			if !writeOK {
				continue
			}
			if !s.writeStream(w, rc, buf) {
				if sess == nil {
					return
				}
				// Keep draining with writes disabled — every settled
				// result still advances the watermark above — but stop
				// the reader now: no new events ride a dead response.
				writeOK = false
				cancel()
				_ = rc.SetReadDeadline(time.Now())
			}
		}
	}()

	var protoErr error
	body := bufio.NewReaderSize(r.Body, 32<<10)
	var scratch []byte
	var dupBuf []byte
	lastSeq := uint64(0) // last wire seq read on this conn (session mode)
	for {
		line, err := readLine(body, &scratch)
		if len(line) > 0 {
			ev, seq, perr := parseStreamEvent(line)
			if perr != nil {
				protoErr = perr
				break
			}
			dup := false
			if sess != nil {
				switch {
				case seq == 0:
					perr = fmt.Errorf("session stream: line missing seq")
				case lastSeq == 0 && seq > base:
					perr = fmt.Errorf("session stream: seq %d skips past watermark %d", seq, base-1)
				case lastSeq != 0 && seq != lastSeq+1:
					perr = fmt.Errorf("session stream: seq %d after %d breaks contiguity", seq, lastSeq)
				}
				if perr != nil {
					protoErr = perr
					break
				}
				lastSeq = seq
				dup = seq < base
				ev.Session, ev.SessionSeq = sid, seq
			}
			if dup {
				// Replay of an already-applied event: acknowledge without
				// re-applying. Dups are a contiguous preamble (contiguity
				// forces them before the first submit), so the writer
				// goroutine has nothing in flight yet and the response is
				// ours to write. A failed write means the client is dying;
				// the body read below will notice.
				dupBuf = append(dupBuf[:0], `{"seq":`...)
				dupBuf = strconv.AppendUint(dupBuf, seq, 10)
				dupBuf = append(dupBuf, `,"dup":true}`+"\n"...)
				_ = s.writeStream(w, rc, dupBuf)
			} else if serr := sc.Submit(ctx, ev); serr != nil {
				// Window reservation failed (client gone or cluster
				// closed); the in-flight results still drain below.
				break
			}
		}
		if err != nil {
			// io.EOF is the client's CloseSend; anything else is a dead
			// connection.
			break
		}
	}
	sc.CloseSend()
	<-done
	if protoErr != nil {
		// All settled results are out; tell the client why the stream
		// ended early (an Error-only line, seq -1).
		_ = json.NewEncoder(w).Encode(streamclient.Result{Seq: -1, Error: protoErr.Error()})
		_ = rc.Flush()
	}
}

// writeStream writes one burst of response lines under the configured
// write deadline. False means the client is gone or stopped reading
// past the deadline — the transport is done for.
func (s *server) writeStream(w http.ResponseWriter, rc *http.ResponseController, buf []byte) bool {
	if s.opts.StreamWriteTimeout > 0 {
		_ = rc.SetWriteDeadline(time.Now().Add(s.opts.StreamWriteTimeout))
	}
	if _, err := w.Write(buf); err != nil {
		return false
	}
	return rc.Flush() == nil
}

// reshardRequest is the wire form of POST /v1/admin/reshard.
type reshardRequest struct {
	Shards int `json:"shards"`
}

// reshardResponse reports the shard count the fleet actually runs
// after the cutover (Reshard clamps to the tenant count).
type reshardResponse struct {
	Shards int `json:"shards"`
}

// handleReshard drives a live Cluster.Reshard: the fleet keeps serving
// while a shadow layout replays the durability log, and the response
// arrives only after the make-before-break cutover verified the new
// layout's renders byte-identical to the old. 409 when the fleet has
// no WAL (resharding replays the log, so there must be one).
func handleReshard(c *videodist.Cluster, w http.ResponseWriter, r *http.Request) {
	var req reshardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reshard body: %w", err))
		return
	}
	if req.Shards <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reshard needs a positive shard count, got %d", req.Shards))
		return
	}
	if err := c.Reshard(req.Shards); err != nil {
		if errors.Is(err, videodist.ErrNoWAL) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reshardResponse{Shards: c.NumShards()})
}

// handleCatalog serves the fleet catalog snapshot; 404 when the fleet
// was built without a catalog.
func handleCatalog(c *videodist.Cluster, w http.ResponseWriter) {
	snap, err := c.CatalogSnapshot()
	if err != nil {
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func handleSnapshot(c *videodist.Cluster, w http.ResponseWriter) {
	fs, err := c.Snapshot()
	if err != nil {
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// writeTransportError maps the sentinel error taxonomy onto HTTP
// status codes.
func writeTransportError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, videodist.ErrUnknownTenant),
		errors.Is(err, videodist.ErrNoCatalog),
		errors.Is(err, videodist.ErrUnknownCatalogStream):
		code = http.StatusNotFound
	case errors.Is(err, videodist.ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, videodist.ErrClosed),
		errors.Is(err, videodist.ErrNotDurable):
		code = http.StatusServiceUnavailable
	case errors.Is(err, videodist.ErrCanceled):
		code = http.StatusRequestTimeout
	}
	writeError(w, code, err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
