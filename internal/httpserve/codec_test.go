package httpserve

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	videodist "repro"
	"repro/streamclient"
)

// TestFastParseMatchesStdlib pins the hand-rolled line scanner against
// the stdlib decoder: on every line it accepts, the parsed event must
// equal json.Unmarshal's; lines it rejects must still round-trip
// through the fallback, so parseStreamEvent is stdlib-equivalent on
// all valid input.
func TestFastParseMatchesStdlib(t *testing.T) {
	lines := []string{
		`{"tenant":0,"type":"offer","stream":3}`,
		`{"tenant":7,"type":"depart","stream":12}`,
		`{"tenant":1,"type":"leave","user":4}`,
		`{"tenant":1,"type":"join","user":0}`,
		`{"tenant":2,"type":"resolve","install":true}`,
		`{"tenant":2,"type":"resolve","install":false}`,
		`{"tenant":0,"type":"catalog-offer","catalog_id":"ch-003"}`,
		`{"tenant":3,"type":"catalog-depart","catalog_id":"espn-hd"}`,
		` { "tenant" : 5 , "type" : "offer" , "stream" : 9 } `,
		`{"type":"offer","tenant":4,"stream":1}`, // key order free
		`{"tenant":-1,"type":"offer"}`,           // negative int
		`{"tenant":0,"type":"offer","stream":123456789}`,
		"{}",
	}
	for _, line := range lines {
		var want streamclient.Event
		if err := json.Unmarshal([]byte(line), &want); err != nil {
			t.Fatalf("bad test line %q: %v", line, err)
		}
		if got, ok := fastParseEvent([]byte(line)); ok && !reflect.DeepEqual(got, want) {
			t.Errorf("fast parse of %q = %+v, stdlib %+v", line, got, want)
		}
	}

	// Lines the fast path must hand to the stdlib — exotic but valid
	// JSON keeps working through the fallback.
	fallback := []string{
		`{"tenant":0,"type":"of\u0066er","stream":3}`,       // escape in string
		`{"tenant":0,"type":"offer","stream":3,"extra":1}`,  // unknown key
		`{"tenant":0,"type":"offer","stream":3.0}`,          // float
		`{"tenant":12345678901,"type":"offer"}`,             // would overflow the fast int
		`{"tenant":0,"type":"offer","catalog_id":"żółć"}`,   // non-ASCII string
		`{"tenant":0,"type":"offer","stream":null}`,         // null value
		`{"tenant": 0, "type": "offer", "stream": 2} trail`, // trailing garbage
		`{"tenant":0,"type":"offer","stream":007}`,          // leading zero: invalid JSON
		`{"tenant":-01,"type":"offer"}`,                     // leading zero after sign
	}
	for _, line := range fallback {
		if _, ok := fastParseEvent([]byte(line)); ok {
			t.Errorf("fast path accepted non-canonical line %q", line)
		}
	}
	// And through parseStreamEvent the valid ones still decode.
	ev, _, err := parseStreamEvent([]byte(`{"tenant":0,"type":"of\u0066er","stream":3}`))
	if err != nil || ev.Type != videodist.ClusterStreamArrival || ev.Stream != 3 {
		t.Fatalf("fallback parse = %+v, %v", ev, err)
	}
	if _, _, err := parseStreamEvent([]byte(`{not json`)); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestAppendResultLineMatchesStdlibDecode pins the hand-rolled result
// encoder: every line it emits must decode (stdlib) into exactly the
// streamclient.Result the equivalent stdlib encoding decodes into —
// including the nil-vs-empty slice semantics of omitempty fields.
func TestAppendResultLineMatchesStdlibDecode(t *testing.T) {
	cases := []videodist.StreamResult{
		{Seq: 0, Type: videodist.ClusterStreamArrival,
			Offer: videodist.OfferResult{Accepted: true, Subscribers: []int{2, 5}, Utility: 7.25}},
		{Seq: 1, Type: videodist.ClusterStreamArrival,
			Offer: videodist.OfferResult{}}, // rejected: nil subscribers -> null
		{Seq: 2, Type: videodist.ClusterStreamDeparture,
			Depart: videodist.DepartResult{Removed: true, Subscribers: []int{0}}},
		{Seq: 3, Type: videodist.ClusterUserLeave,
			Churn: videodist.ChurnResult{Changed: true, Streams: []int{1, 4}}},
		{Seq: 4, Type: videodist.ClusterUserJoin, Churn: videodist.ChurnResult{}},
		{Seq: 5, Type: videodist.ClusterResolve,
			Resolve: videodist.ResolveResult{Installed: true, OnlineValue: 1.5, OfflineValue: 2e-7}},
		{Seq: 6, Type: videodist.ClusterStreamArrival, CatalogID: "ch-1",
			Catalog: videodist.CatalogResult{Admitted: true, Subscribers: []int{3},
				Utility: 4.5, Refs: 2, SharedWith: []int{1}, CostScale: 0.25,
				FullCost: 10, CostCharged: 2.5}},
		{Seq: 7, Type: videodist.ClusterStreamDeparture, CatalogID: "ch-1",
			Catalog: videodist.CatalogResult{Removed: true, Refs: 0, Evicted: true}},
		{Seq: 8, Type: videodist.ClusterStreamArrival,
			Err: errors.New(`cluster: "quoted" & weird ünïcode error`)},
	}
	for _, res := range cases {
		line := appendResultLine(nil, res)
		var got streamclient.Result
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("seq %d: emitted invalid JSON %q: %v", res.Seq, line, err)
		}
		// The stdlib reference: marshal the equivalent Result and decode.
		ref := streamclient.Result{Seq: res.Seq, Type: wireTypeName(res)}
		switch {
		case res.Err != nil:
			ref.Error = res.Err.Error()
		case res.CatalogID != "":
			v := res.Catalog
			ref.Catalog = &v
		case res.Type == videodist.ClusterStreamArrival:
			v := res.Offer
			ref.Offer = &v
		case res.Type == videodist.ClusterStreamDeparture:
			v := res.Depart
			ref.Depart = &v
		case res.Type == videodist.ClusterUserLeave, res.Type == videodist.ClusterUserJoin:
			v := res.Churn
			ref.Churn = &v
		case res.Type == videodist.ClusterResolve:
			v := res.Resolve
			ref.Resolve = &v
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		var want streamclient.Result
		if err := json.Unmarshal(refJSON, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seq %d:\nhand-rolled %s\n-> %+v\nstdlib      %s\n-> %+v",
				res.Seq, line, got, refJSON, want)
		}
	}
}

// TestEventAppendJSONMatchesStdlib pins the client-side event encoder
// against the stdlib for every wire shape the client emits.
func TestEventAppendJSONMatchesStdlib(t *testing.T) {
	cases := []streamclient.Event{
		{Tenant: 0, Type: "offer", Stream: 3},
		{Tenant: 7, Type: "depart", Stream: 0},
		{Tenant: 1, Type: "leave", User: 4},
		{Tenant: 2, Type: "resolve", Install: true},
		{Tenant: 3, Type: "catalog-offer", CatalogID: "espn-hd"},
		{Tenant: 3, Type: "catalog-depart", CatalogID: `we"ird\id`},
	}
	for i, ev := range cases {
		line := ev.AppendJSON(nil)
		var got streamclient.Event
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("case %d: invalid JSON %q: %v", i, line, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("case %d: %q decodes to %+v, want %+v", i, line, got, ev)
		}
	}
}
