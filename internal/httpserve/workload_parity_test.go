package httpserve

import (
	"net/http/httptest"
	"testing"

	videodist "repro"
	"repro/internal/generator"
	"repro/internal/loaddrive"
	"repro/streamclient"
)

// These tests pin the ingestion-via parity promise on adversarial
// traffic: the generator's flash-crowd schedule — skewed catalog
// offers, a cross-tenant spike, full drain — replayed over one
// /v1/stream connection, :batch posts, and one POST per event, at
// shards 1, 2, and 4. CI runs the package under -race, so the sharded
// replays double as a data-race probe on the catalog admission path.
//
// What parity means here follows the documented submission-path
// semantics (see ARCHITECTURE.md): batches and coalesced stream
// windows price catalog arrivals against pre-window sharing state, and
// the crowd schedule departs and re-offers the same CatalogID across
// rounds, so catalog admission/eviction counters are a property of the
// window boundaries — fixed 16-event chunks for the batch via,
// timing-dependent for the pipelined stream via, settled one-by-one
// for single posts. The assertions are therefore tiered: per-tenant
// tables are order-determined and must match bit-for-bit wherever
// pricing cannot feed back into admission (isolated pricing, any via);
// full renders must be shard-count invariant per deterministic via;
// and every via must drain all refcounts and stay feasible.

// crowdSeqs builds the flash-crowd schedule in per-tenant wire form.
func crowdSeqs(t *testing.T, tenants, channels, gateways int) [][]streamclient.Event {
	t.Helper()
	events, err := generator.ZipfFlashCrowd{
		Tenants: tenants, Channels: channels, Gateways: gateways,
		Seed: 77, Rounds: 3,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]streamclient.Event, tenants)
	for _, ev := range events {
		out[ev.Tenant] = append(out[ev.Tenant], streamclient.Event{
			Tenant: ev.Tenant, Type: string(ev.Type), Stream: ev.Stream,
			User: ev.User, CatalogID: ev.CatalogID,
		})
	}
	return out
}

// driveCrowd replays the schedule into a fresh fleet over the named
// via, checks the universal invariants (feasible, every catalog
// refcount drained to zero), and returns the rendered tenant tables
// and catalog registry.
func driveCrowd(t *testing.T, shards int, model videodist.CatalogCostModel,
	seqs [][]streamclient.Event, via string) (tables, cat string) {
	t.Helper()
	cfg := defaultFleetConfig()
	cfg.shards = shards
	cfg.costModel = model
	c := buildFleet(t, cfg)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	events := loaddrive.Interleave(seqs)
	var n int
	var err error
	switch via {
	case "stream":
		n, err = loaddrive.Stream(ts.URL, events)
	case "batch":
		n, err = loaddrive.Batch(ts.URL, seqs, 16)
	case "single":
		n, err = loaddrive.Single(ts.URL, events)
	default:
		t.Fatalf("unknown via %q", via)
	}
	if err != nil {
		t.Fatalf("%s via shards=%d: %v", via, shards, err)
	}
	if n != len(events) {
		t.Fatalf("%s via shards=%d: submitted %d of %d events", via, shards, n, len(events))
	}

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.AllFeasible {
		t.Fatalf("%s via shards=%d: fleet infeasible after flash crowd", via, shards)
	}
	cs, err := c.CatalogSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cs.Entries {
		if e.Refs != 0 {
			t.Fatalf("%s via shards=%d: %s holds %d refs after full drain", via, shards, e.ID, e.Refs)
		}
	}
	return fs.RenderTenants(), cs.Render()
}

// TestWorkloadCrowdParityAcrossVias drives the flash crowd through all
// three ingestion vias at shards 1, 2, and 4 under isolated pricing.
// Isolated pricing cannot feed sharing state back into admission, so
// the tenant tables must be one bit-identical render across the whole
// via x shard grid; the single and batch catalog renders must each be
// shard-count invariant (the stream via's counters depend on window
// timing and are held only to the drained-refs invariant).
func TestWorkloadCrowdParityAcrossVias(t *testing.T) {
	cfg := defaultFleetConfig()
	seqs := crowdSeqs(t, cfg.tenants, cfg.channels, cfg.gateways)
	var wantTables string
	wantCat := map[string]string{}
	for _, shards := range []int{1, 2, 4} {
		for _, via := range []string{"stream", "batch", "single"} {
			tables, cat := driveCrowd(t, shards, videodist.CatalogIsolated{}, seqs, via)
			if wantTables == "" {
				wantTables = tables
			} else if tables != wantTables {
				t.Fatalf("%s via at shards=%d: tenant tables diverged:\n%s\n--- want ---\n%s",
					via, shards, tables, wantTables)
			}
			if via == "stream" {
				continue
			}
			if want, ok := wantCat[via]; !ok {
				wantCat[via] = cat
			} else if cat != want {
				t.Fatalf("%s via at shards=%d: catalog diverged across shard counts:\n%s\n--- want ---\n%s",
					via, shards, cat, want)
			}
		}
	}
}

// TestWorkloadCrowdParitySharedOrigin repeats the drive under
// shared-origin pricing. Here charge scales depend on sharing state,
// so only the deterministic-window vias pin full renders: single posts
// and fixed-chunk batches must each be bit-identical across shard
// counts (they may differ from each other — pre-window pricing is the
// documented batch caveat). The pipelined stream via still runs at
// every shard count for the race probe and the drained-refs check.
func TestWorkloadCrowdParitySharedOrigin(t *testing.T) {
	cfg := defaultFleetConfig()
	seqs := crowdSeqs(t, cfg.tenants, cfg.channels, cfg.gateways)
	model := videodist.CatalogSharedOrigin{ReplicationFraction: 0.25}
	wantTables := map[string]string{}
	wantCat := map[string]string{}
	for _, shards := range []int{1, 2, 4} {
		for _, via := range []string{"stream", "batch", "single"} {
			tables, cat := driveCrowd(t, shards, model, seqs, via)
			if via == "stream" {
				continue
			}
			if _, ok := wantTables[via]; !ok {
				wantTables[via], wantCat[via] = tables, cat
				continue
			}
			if tables != wantTables[via] || cat != wantCat[via] {
				t.Fatalf("%s via at shards=%d diverged across shard counts under shared-origin pricing:\n%s\n%s\n--- want ---\n%s\n%s",
					via, shards, tables, cat, wantTables[via], wantCat[via])
			}
		}
	}
}
