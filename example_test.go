package videodist_test

import (
	"fmt"

	videodist "repro"
)

// ExampleSolve builds a two-budget head-end instance by hand and solves
// it with the Theorem 1.1 pipeline.
func ExampleSolve() {
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news", Costs: []float64{4, 1}},
			{Name: "sports", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{{
			Name:       "gw",
			Utility:    []float64{3, 9},
			Loads:      [][]float64{{4, 8}},
			Capacities: []float64{12},
		}},
		Budgets: []float64{12, 2},
	}
	assn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("value %.0f, streams %v\n", report.Value, assn.UserStreams(0))
	// Output: value 12, streams [0 1]
}

// ExampleSolveOnline runs the Section 5 online algorithm on a
// small-streams workload.
func ExampleSolveOnline() {
	in, err := videodist.SmallStreams{
		Base: videodist.RandomMMD{Streams: 10, Users: 3, M: 2, MC: 1, Seed: 7, Skew: 2},
	}.Generate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	assn, norm, err := videodist.SolveOnline(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("feasible: %v, bound %.1f\n",
		assn.CheckFeasible(in) == nil, norm.CompetitiveBound())
	// Output: feasible: true, bound 18.3
}

// ExampleThreshold contrasts the deployed-world baseline on the same
// instance as ExampleSolve: it admits the first stream it sees and
// blocks the better one.
func ExampleThreshold() {
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news", Costs: []float64{4, 1}},
			{Name: "sports", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{{
			Name:       "gw",
			Utility:    []float64{3, 9},
			Loads:      [][]float64{{4, 8}},
			Capacities: []float64{8}, // room for only one of them
		}},
		Budgets: []float64{8, 2},
	}
	thr, err := videodist.Threshold(in, nil, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	solver, _, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("threshold %.0f vs solver %.0f\n", thr.Utility(in), solver.Utility(in))
	// Output: threshold 3 vs solver 9
}
