package videodist_test

import (
	"context"
	"errors"
	"fmt"

	videodist "repro"
)

// ExampleSolve builds a two-budget head-end instance by hand and solves
// it with the Theorem 1.1 pipeline.
func ExampleSolve() {
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news", Costs: []float64{4, 1}},
			{Name: "sports", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{{
			Name:       "gw",
			Utility:    []float64{3, 9},
			Loads:      [][]float64{{4, 8}},
			Capacities: []float64{12},
		}},
		Budgets: []float64{12, 2},
	}
	assn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("value %.0f, streams %v\n", report.Value, assn.UserStreams(0))
	// Output: value 12, streams [0 1]
}

// ExampleSolveOnline runs the Section 5 online algorithm on a
// small-streams workload.
func ExampleSolveOnline() {
	in, err := videodist.SmallStreams{
		Base: videodist.RandomMMD{Streams: 10, Users: 3, M: 2, MC: 1, Seed: 7, Skew: 2},
	}.Generate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	assn, norm, err := videodist.SolveOnline(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("feasible: %v, bound %.1f\n",
		assn.CheckFeasible(in) == nil, norm.CompetitiveBound())
	// Output: feasible: true, bound 18.3
}

// Example_cluster drives the serving API v2 end to end: a one-tenant
// fleet, typed request/response session calls for stream arrivals and
// gateway churn, an installing re-solve, and the sentinel error
// taxonomy after Close.
func Example_cluster() {
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news", Costs: []float64{4, 1}},
			{Name: "sports", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{{
			Name:       "gw",
			Utility:    []float64{3, 9},
			Loads:      [][]float64{{4, 8}},
			Capacities: []float64{12},
		}},
		Budgets: []float64{12, 2},
	}
	c, err := videodist.NewCluster(
		[]videodist.ClusterTenant{{Instance: in}},
		videodist.ClusterOptions{Shards: 1},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx := context.Background()

	for s := 0; s < 2; s++ {
		res, err := c.OfferStream(ctx, 0, s)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("offer %d: accepted=%v subscribers=%v utility=%.0f\n",
			s, res.Accepted, res.Subscribers, res.Utility)
	}
	if _, err := c.UserLeave(ctx, 0, 0); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := c.UserJoin(ctx, 0, 0); err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := c.Resolve(ctx, 0, videodist.ResolveOptions{Install: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("resolve: installed=%v online=%.0f offline=%.0f\n",
		res.Installed, res.OnlineValue, res.OfflineValue)

	fs, err := c.Snapshot()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fleet: utility=%.0f feasible=%v\n", fs.Utility, fs.AllFeasible)

	c.Close()
	_, err = c.OfferStream(ctx, 0, 0)
	fmt.Println("offer after close:", errors.Is(err, videodist.ErrClosed))
	// Output:
	// offer 0: accepted=true subscribers=[0] utility=3
	// offer 1: accepted=false subscribers=[] utility=0
	// resolve: installed=true online=0 offline=12
	// fleet: utility=12 feasible=true
	// offer after close: true
}

// ExampleThreshold contrasts the deployed-world baseline on the same
// instance as ExampleSolve: it admits the first stream it sees and
// blocks the better one.
func ExampleThreshold() {
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news", Costs: []float64{4, 1}},
			{Name: "sports", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{{
			Name:       "gw",
			Utility:    []float64{3, 9},
			Loads:      [][]float64{{4, 8}},
			Capacities: []float64{8}, // room for only one of them
		}},
		Budgets: []float64{8, 2},
	}
	thr, err := videodist.Threshold(in, nil, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	solver, _, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("threshold %.0f vs solver %.0f\n", thr.Utility(in), solver.Utility(in))
	// Output: threshold 3 vs solver 9
}
