package streamclient

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrWindowFull reports a Send on a Session whose unacked window is at
// capacity. Drain results (Recv) before sending more — the window is
// the replay buffer, so it cannot grow without bound.
var ErrWindowFull = errors.New("streamclient: session window full")

// SessionOptions configures a resumable Session.
type SessionOptions struct {
	// ID is the session identity, required and caller-chosen (unique
	// per logical client — a UUID, a hostname+pid). The server keys
	// its dedup watermark by it, including across server restarts.
	ID string
	// Window caps unacked events held for replay (default 8192).
	Window int
	// MaxAttempts bounds the redials per outage (default 8); the
	// attempt counter resets after every successful reconnect.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the exponential backoff between
	// redial attempts (defaults 10ms and 2s). A server Retry-After
	// hint overrides a shorter computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the backoff jitter deterministic (chaos drills replay
	// schedules exactly); 0 uses a fixed default seed.
	Seed int64
	// Dial replaces net.Dial (see DialOptions.Dial).
	Dial func(network, addr string) (net.Conn, error)
}

// Session is a streaming connection that survives the connection: it
// assigns every event a per-session sequence number, keeps unacked
// events in a replay window, and on any transport failure redials with
// exponential backoff + jitter and replays the window. The server
// dedups replayed seqs against its WAL-backed watermark, so each event
// is applied at most once no matter how many times the connection (or
// the server) dies mid-flight; already-applied replays come back as
// Dup-marked results.
//
// Concurrency matches Conn: one sender goroutine (Send, CloseSend) and
// one receiver goroutine (Recv) at a time. Reconnection is driven from
// whichever side hits the failure and is serialized internally; the
// backoff sleep blocks the session, which is the point — there is no
// server to talk to.
type Session struct {
	base string
	opts SessionOptions

	mu         sync.Mutex
	conn       *Conn
	nextSeq    uint64  // last assigned seq
	ackSeq     uint64  // highest acked seq (results and dups)
	wireSeq    uint64  // highest seq written to the current conn
	unacked    []Event // ascending seq: the replay window
	rng        *rand.Rand
	sendClosed bool
	eof        bool  // clean end of stream observed
	err        error // latched fatal error
	dups       int
	redials    int
}

// NewSession prepares a resumable session against an mmdserve base
// URL. No connection is opened yet — the first Send or Recv dials (and
// a dial failure there retries under the same backoff policy as any
// mid-stream outage).
func NewSession(baseURL string, opts SessionOptions) (*Session, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("streamclient: session needs an ID")
	}
	if opts.Window <= 0 {
		opts.Window = 8192
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 10 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Session{base: baseURL, opts: opts, rng: rand.New(rand.NewSource(seed))}, nil
}

// Send pipelines one event. ev.Seq is assigned by the session (any
// caller value is overwritten); the event stays in the replay window
// until its result (or dup acknowledgement) arrives. A transport
// failure triggers reconnect + replay inline, so a nil return means
// the event is on the wire exactly once from the server's point of
// view.
func (s *Session) Send(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.sendClosed {
		return fmt.Errorf("streamclient: send side closed")
	}
	if len(s.unacked) >= s.opts.Window {
		return ErrWindowFull
	}
	s.nextSeq++
	ev.Seq = s.nextSeq
	s.unacked = append(s.unacked, ev)
	if s.conn == nil {
		// redial replays the window, this event included.
		return s.redialLocked(0)
	}
	if ev.Seq > s.wireSeq {
		if err := s.conn.Send(ev); err != nil {
			return s.redialLocked(0)
		}
		s.wireSeq = ev.Seq
	}
	return nil
}

// Recv returns the next result, reconnecting and replaying as needed.
// Results arrive in seq order; a Dup-marked result acknowledges an
// event the server had already applied before a reconnect. After
// CloseSend and the final result, Recv reports io.EOF.
func (s *Session) Recv() (Result, error) {
	for {
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return Result{}, err
		}
		if s.eof {
			s.mu.Unlock()
			return Result{}, io.EOF
		}
		if s.conn == nil {
			if s.sendClosed && len(s.unacked) == 0 {
				s.eof = true
				s.mu.Unlock()
				return Result{}, io.EOF
			}
			if err := s.redialLocked(0); err != nil {
				s.mu.Unlock()
				return Result{}, err
			}
		}
		c := s.conn
		s.mu.Unlock()

		res, err := c.Recv()
		if err == nil {
			s.mu.Lock()
			if res.Seq > 0 {
				s.ackLocked(uint64(res.Seq))
				if res.Dup {
					s.dups++
				}
			}
			s.mu.Unlock()
			return res, nil
		}
		if err == io.EOF {
			s.mu.Lock()
			done := s.sendClosed && len(s.unacked) == 0
			if done {
				s.eof = true
			} else if s.conn == c {
				s.conn = nil // premature EOF: server went away mid-stream
			}
			s.mu.Unlock()
			if done {
				return Result{}, io.EOF
			}
			continue
		}
		var hint time.Duration
		var se *StatusError
		if errors.As(err, &se) {
			if !se.Retryable() {
				s.mu.Lock()
				s.err = se
				s.mu.Unlock()
				return Result{}, se
			}
			hint = se.RetryAfter
		}
		// Close the dead conn before taking the lock: a sender parked
		// mid-write on it unblocks with an error instead of holding the
		// lock hostage behind a TCP timeout.
		c.Close()
		s.mu.Lock()
		if s.conn == c {
			s.conn = nil
			if rerr := s.redialLocked(hint); rerr != nil {
				s.mu.Unlock()
				return Result{}, rerr
			}
		}
		s.mu.Unlock()
	}
}

// ackLocked advances the watermark and trims the replay window.
func (s *Session) ackLocked(seq uint64) {
	if seq > s.ackSeq {
		s.ackSeq = seq
	}
	i := 0
	for i < len(s.unacked) && s.unacked[i].Seq <= seq {
		i++
	}
	if i > 0 {
		s.unacked = append(s.unacked[:0], s.unacked[i:]...)
	}
}

// redialLocked dials a fresh connection with backoff + jitter, replays
// the unacked window onto it, and re-closes the send side if CloseSend
// already happened. Called with s.mu held (the backoff sleeps under
// the lock: the whole session is down, serializing is correct).
func (s *Session) redialLocked(hint time.Duration) error {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
	var lastErr error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 || hint > 0 {
			d := s.opts.BaseDelay << max(attempt-1, 0)
			if d > s.opts.MaxDelay || d <= 0 {
				d = s.opts.MaxDelay
			}
			// Full jitter on the upper half: d/2 + uniform[0, d/2].
			d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
			if hint > d {
				d = hint
			}
			time.Sleep(d)
		}
		c, err := DialWith(s.base, DialOptions{
			Dial:   s.opts.Dial,
			Header: map[string]string{"X-Stream-Session": s.opts.ID},
		})
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.replayOnto(c); err != nil {
			_ = c.Close()
			lastErr = err
			continue
		}
		s.conn = c
		s.wireSeq = s.nextSeq
		s.redials++
		return nil
	}
	s.err = fmt.Errorf("streamclient: session %q: reconnect failed after %d attempts: %w",
		s.opts.ID, s.opts.MaxAttempts, lastErr)
	return s.err
}

// replayOnto writes the unacked window to a fresh conn and flushes, so
// the server's acks (dups for anything already applied) start flowing.
func (s *Session) replayOnto(c *Conn) error {
	for _, ev := range s.unacked {
		if err := c.Send(ev); err != nil {
			return err
		}
	}
	if s.sendClosed {
		return c.CloseSend()
	}
	return c.Flush()
}

// CloseSend ends the sending half once every unacked event is on the
// wire; the server settles and streams out the remaining results, then
// ends the response. If the connection is down, the next reconnect
// replays the window and re-closes.
func (s *Session) CloseSend() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.sendClosed = true
	if s.conn == nil {
		return nil
	}
	if err := s.conn.CloseSend(); err != nil {
		// Transport death here is recoverable: drop the conn and let
		// Recv's reconnect replay + re-close.
		_ = s.conn.Close()
		s.conn = nil
	}
	return nil
}

// Close tears the session down. Unacked events are abandoned
// client-side (the server applies whatever it read — reconnect later
// with the same ID and the watermark still dedups).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = fmt.Errorf("streamclient: session closed")
	}
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

// Dups reports how many Dup-marked results this session has received —
// each one is an event the exactly-once dedup kept from being applied
// twice.
func (s *Session) Dups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Redials reports how many connections the session has opened
// (including the first).
func (s *Session) Redials() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redials
}
