// Package streamclient is the Go client for the serving API v4
// streaming ingestion endpoint (`POST /v1/stream`, served by mmdserve
// and internal/httpserve): a single long-lived HTTP request whose
// chunked NDJSON body carries one Event per line, answered by one
// NDJSON Result line per event on the response stream, in submission
// order. The Event and Result structs ARE the wire format — both ends
// of the protocol marshal exactly these.
//
// A Conn supports one sender and one receiver goroutine concurrently
// (each side is independently serialized): pipeline Sends without
// waiting, Recv the results in order, CloseSend when done, and drain
// until io.EOF. Flow control is end to end — the server applies events
// under a bounded in-flight window and writes results as they settle,
// so a sender that outruns the reader is eventually parked by TCP
// backpressure, never by unbounded buffering.
//
// The client speaks HTTP/1.1 directly over its own TCP connection
// (request chunking via net/http/httputil, response parsing via
// http.ReadResponse) instead of going through http.Client: the standard
// transport buffers streaming request bodies under its own flush
// policy, while a pipelined protocol needs the flushes under the
// client's control — lines coalesce while traffic flows and hit the
// wire the moment a receiver would otherwise block (see Send/Flush).
package streamclient

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	videodist "repro"
)

// ErrOverloaded matches (via errors.Is) a StatusError for a 503 the
// server sent while shedding load: the request was refused fast, with
// a Retry-After hint, instead of queueing into a latency collapse. A
// resumable Session backs off and retries it automatically; plain
// Conn callers decide for themselves.
var ErrOverloaded = errors.New("streamclient: server overloaded")

// StatusError is a non-200 response to the stream request. It latches
// the Conn (the protocol has no mid-stream recovery on one
// connection); a Session reacts by backing off and redialing when the
// status is retryable.
type StatusError struct {
	// Code and Status are the HTTP status ("503 Service Unavailable").
	Code   int
	Status string
	// Message is the server's error body, if any.
	Message string
	// RetryAfter is the parsed Retry-After delay (0 when absent) — the
	// server's shed-backoff hint on a 503.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("streamclient: server status %s", e.Status)
	}
	return fmt.Sprintf("streamclient: server status %s: %s", e.Status, e.Message)
}

// Is makes errors.Is(err, ErrOverloaded) true for a 503.
func (e *StatusError) Is(target error) bool {
	return target == ErrOverloaded && e.Code == http.StatusServiceUnavailable
}

// Retryable reports whether redialing can succeed: overload (503),
// queue-full (429), request-timeout (408), and other 5xx are
// transient; everything else (bad request, unknown tenant) is not.
func (e *StatusError) Retryable() bool {
	return e.Code == http.StatusTooManyRequests ||
		e.Code == http.StatusRequestTimeout ||
		e.Code >= 500
}

// Event is the NDJSON wire form of one fleet event (one line of the
// request body).
type Event struct {
	// Seq is the client-assigned per-session sequence number (1-based),
	// set only on resumable sessions (see Session): the server dedups
	// replayed seqs against its watermark so a retried event is applied
	// at most once. 0 (omitted) on plain connections.
	Seq uint64 `json:"seq,omitempty"`
	// Tenant is the target tenant index.
	Tenant int `json:"tenant"`
	// Type selects the operation: "offer", "depart", "leave", "join",
	// "resolve", "catalog-offer", or "catalog-depart".
	Type string `json:"type"`
	// Stream is the local stream index (offer, depart).
	Stream int `json:"stream,omitempty"`
	// User is the gateway index (leave, join).
	User int `json:"user,omitempty"`
	// Install asks a resolve to install the offline assignment.
	Install bool `json:"install,omitempty"`
	// CatalogID is the fleet-wide stream identity (catalog-offer,
	// catalog-depart; ignored on every other type).
	CatalogID string `json:"catalog_id,omitempty"`
}

// Result is the NDJSON wire form of one per-event result (one line of
// the response stream). Exactly the field matching Type is set; Error
// carries a per-event failure without ending the stream. A final line
// with Error set, Seq -1, and no Type reports a protocol violation
// (malformed line, unknown event type) that terminated the stream
// server-side.
type Result struct {
	// Seq is the event's submission index on this stream (0-based).
	Seq int `json:"seq"`
	// Type echoes the request line's type.
	Type string `json:"type,omitempty"`
	// Typed results, mirroring the single-event endpoint.
	Offer   *videodist.OfferResult   `json:"offer,omitempty"`
	Depart  *videodist.DepartResult  `json:"depart,omitempty"`
	Churn   *videodist.ChurnResult   `json:"churn,omitempty"`
	Resolve *videodist.ResolveResult `json:"resolve,omitempty"`
	Catalog *videodist.CatalogResult `json:"catalog,omitempty"`
	// Error is the per-event (or, on the final line, stream-fatal)
	// failure.
	Error string `json:"error,omitempty"`
	// Dup marks a dedup acknowledgement on a resumed session: the
	// event with this Seq was already applied before the reconnect, so
	// the server skipped it instead of applying it twice. No typed
	// result accompanies it (the original was delivered on the
	// connection that died).
	Dup bool `json:"dup,omitempty"`
}

// Conn is one persistent streaming ingestion connection.
type Conn struct {
	conn net.Conn
	bw   *bufio.Writer
	cw   io.WriteCloser // chunked request body
	br   *bufio.Reader

	sendMu     sync.Mutex
	sendClosed bool
	sendBuf    []byte // reused line-encoding scratch

	recvMu  sync.Mutex
	resp    *http.Response
	recvErr error         // latched fatal receive error (e.g. non-200)
	bodyr   *bufio.Reader // de-chunked response lines
	lineBuf []byte        // reused long-line scratch
}

// DialOptions tune how a Conn reaches the server. The zero value is
// Dial's behavior.
type DialOptions struct {
	// Dial replaces net.Dial for the underlying TCP connection — the
	// seam chaos tests and instrumented clients hook (see
	// internal/chaos.Dialer). Nil uses net.Dial.
	Dial func(network, addr string) (net.Conn, error)
	// Header adds extra request headers (canonical-cased keys), e.g.
	// the X-Stream-Session id a resumable session announces itself
	// with. Values must be header-safe; they are written verbatim.
	Header map[string]string
	// Path overrides the request path (default "/v1/stream"). Other
	// full-duplex NDJSON endpoints — the fleet catalog service's wire
	// protocol among them — ride the same chunked transport by pointing
	// a Conn at their path and exchanging raw lines via SendRaw /
	// RecvRaw.
	Path string
}

// Dial opens a streaming session against an mmdserve base URL (e.g.
// "http://localhost:8080"): it connects, sends the request headers for
// POST /v1/stream, and returns a Conn ready to Send and Recv.
func Dial(baseURL string) (*Conn, error) { return DialWith(baseURL, DialOptions{}) }

// DialWith is Dial with explicit options.
func DialWith(baseURL string, opts DialOptions) (*Conn, error) {
	raw := baseURL
	if !strings.Contains(raw, "://") {
		// Tolerate a bare "host:port".
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("streamclient: bad url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("streamclient: unsupported scheme %q (plain http only)", u.Scheme)
	}
	host := u.Host
	if host == "" {
		return nil, fmt.Errorf("streamclient: no host in %q", baseURL)
	}
	dial := opts.Dial
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("streamclient: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// A pipelined stream is bursty in both directions; on a busy
		// host the receiving side can be descheduled long enough for a
		// default-sized receive buffer to overflow, which on loopback
		// surfaces as a dropped segment and a ~200ms retransmission
		// stall. A roomy buffer absorbs the bursts (best effort — the
		// kernel caps it).
		_ = tc.SetReadBuffer(4 << 20)
	}
	path := opts.Path
	if path == "" {
		path = "/v1/stream"
	}
	bw := bufio.NewWriter(conn)
	fmt.Fprintf(bw, "POST %s HTTP/1.1\r\nHost: %s\r\n"+
		"Content-Type: application/x-ndjson\r\nAccept: application/x-ndjson\r\n"+
		"Transfer-Encoding: chunked\r\n", path, host)
	for k, v := range opts.Header {
		fmt.Fprintf(bw, "%s: %s\r\n", k, v)
	}
	bw.WriteString("\r\n")
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("streamclient: %w", err)
	}
	return &Conn{conn: conn, bw: bw, cw: httputil.NewChunkedWriter(bw), br: bufio.NewReader(conn)}, nil
}

// Send pipelines one event: the line is encoded into the send buffer
// without waiting for its result. Buffered lines leave as one chunk
// when the buffer fills, when a Recv is about to block with nothing
// readable (the usual path — no stray syscall per line under load), on
// Flush, and on CloseSend; a sender that goes silent without ever
// doing any of those should call Flush itself.
func (c *Conn) Send(ev Event) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendClosed {
		return fmt.Errorf("streamclient: send side closed")
	}
	c.sendBuf = ev.AppendJSON(c.sendBuf)
	c.sendBuf = append(c.sendBuf, '\n')
	// Lines accumulate and leave as one chunk per flush — large chunks
	// amortize the chunked-transfer framing as well as the syscall.
	if len(c.sendBuf) >= 16<<10 {
		return c.flushLocked()
	}
	return nil
}

// SendRaw pipelines one preformatted wire line (without a trailing
// newline) — the generic-protocol twin of Send for Conns pointed at
// other NDJSON endpoints via DialOptions.Path. The buffering and flush
// policy match Send's.
func (c *Conn) SendRaw(line []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendClosed {
		return fmt.Errorf("streamclient: send side closed")
	}
	c.sendBuf = append(c.sendBuf, line...)
	c.sendBuf = append(c.sendBuf, '\n')
	if len(c.sendBuf) >= 16<<10 {
		return c.flushLocked()
	}
	return nil
}

// AppendJSON appends the event's wire line (without the trailing
// newline) to buf — the allocation-free encoder Send uses.
func (ev *Event) AppendJSON(buf []byte) []byte {
	if ev.Seq != 0 {
		buf = append(buf, `{"seq":`...)
		buf = strconv.AppendUint(buf, ev.Seq, 10)
		buf = append(buf, `,"tenant":`...)
	} else {
		buf = append(buf, `{"tenant":`...)
	}
	buf = strconv.AppendInt(buf, int64(ev.Tenant), 10)
	buf = append(buf, `,"type":`...)
	buf = appendJSONString(buf, ev.Type)
	if ev.Stream != 0 {
		buf = append(buf, `,"stream":`...)
		buf = strconv.AppendInt(buf, int64(ev.Stream), 10)
	}
	if ev.User != 0 {
		buf = append(buf, `,"user":`...)
		buf = strconv.AppendInt(buf, int64(ev.User), 10)
	}
	if ev.Install {
		buf = append(buf, `,"install":true`...)
	}
	if ev.CatalogID != "" {
		buf = append(buf, `,"catalog_id":`...)
		buf = appendJSONString(buf, ev.CatalogID)
	}
	return append(buf, '}')
}

// appendJSONString appends s as a JSON string, taking the quick path
// for the plain ASCII tokens the protocol actually uses and falling
// back to the stdlib encoder for anything needing escapes.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if ch := s[i]; ch < 0x20 || ch == '"' || ch == '\\' || ch >= 0x7f {
			quoted, _ := json.Marshal(s)
			return append(buf, quoted...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// Flush puts any buffered lines on the wire now.
func (c *Conn) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.flushLocked()
}

// tryFlush is the receiver's flush-before-block: it flushes the send
// side only if the sender is not mid-operation. Blocking on sendMu
// here could deadlock the whole pipeline — the sender may be parked
// inside a TCP write (holding sendMu) waiting for the server, the
// server waiting for this receiver to read, and the readable bytes
// sitting in the kernel buffer this call is about to read. A failed
// TryLock means the sender is active right now, so its own write is
// already putting bytes on the wire and no flush is needed.
func (c *Conn) tryFlush() {
	if c.sendMu.TryLock() {
		_ = c.flushLocked()
		c.sendMu.Unlock()
	}
}

func (c *Conn) flushLocked() error {
	if len(c.sendBuf) > 0 {
		if _, err := c.cw.Write(c.sendBuf); err != nil {
			return fmt.Errorf("streamclient: %w", err)
		}
		c.sendBuf = c.sendBuf[:0]
	}
	if c.bw.Buffered() == 0 {
		return nil
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("streamclient: %w", err)
	}
	return nil
}

// Recv returns the next result line decoded, in submission order. The
// first call reads the response headers; a non-200 status is returned
// as an error with the server's message. After CloseSend and the final
// result, Recv reports io.EOF. Before blocking on the socket with
// nothing buffered, Recv flushes the send side — so the
// submit-then-receive pattern needs no explicit Flush.
func (c *Conn) Recv() (Result, error) {
	line, err := c.RecvRaw()
	if err != nil {
		return Result{}, err
	}
	var res Result
	if err := json.Unmarshal(line, &res); err != nil {
		return Result{}, fmt.Errorf("streamclient: bad result line: %w", err)
	}
	return res, nil
}

// RecvRaw returns the next result line as raw bytes (without the
// trailing newline) — the zero-decode path for load drivers and relays
// that only forward or count lines. The returned slice is valid only
// until the next Recv or RecvRaw call. Flush-before-block behaves as
// in Recv.
func (c *Conn) RecvRaw() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.recvErr != nil {
		return nil, c.recvErr
	}
	if c.resp == nil {
		c.tryFlush()
		resp, err := http.ReadResponse(c.br, &http.Request{Method: http.MethodPost})
		if err != nil {
			return nil, fmt.Errorf("streamclient: %w", err)
		}
		c.resp = resp
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			se := &StatusError{
				Code:    resp.StatusCode,
				Status:  resp.Status,
				Message: string(bytes.TrimSpace(body)),
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
					se.RetryAfter = time.Duration(secs) * time.Second
				}
			}
			c.recvErr = se
			return nil, c.recvErr
		}
		c.bodyr = bufio.NewReader(resp.Body)
	}
	// Flush-before-block, judged on the de-chunked buffer only: raw
	// bytes in c.br can be nothing but chunk framing (the CRLF tail of
	// the last chunk), which will never decode into a line — treating
	// them as "readable" would skip the flush and park this read on a
	// socket that stays silent until the sender's next buffer-full
	// flush. A redundant flush when payload really is in flight only
	// costs an occasional small chunk.
	if c.bodyr.Buffered() == 0 {
		c.tryFlush()
	}
	line, err := c.bodyr.ReadSlice('\n')
	switch err {
	case nil:
		return line[:len(line)-1], nil
	case bufio.ErrBufferFull:
		// A result line longer than the read buffer: stitch it together
		// in the conn's scratch buffer.
		c.lineBuf = append(c.lineBuf[:0], line...)
		for {
			line, err = c.bodyr.ReadSlice('\n')
			c.lineBuf = append(c.lineBuf, line...)
			if err == nil {
				return c.lineBuf[:len(c.lineBuf)-1], nil
			}
			if err != bufio.ErrBufferFull {
				return nil, fmt.Errorf("streamclient: %w", err)
			}
		}
	case io.EOF:
		if len(line) == 0 {
			return nil, io.EOF
		}
		c.lineBuf = append(c.lineBuf[:0], line...)
		return c.lineBuf, nil
	default:
		return nil, fmt.Errorf("streamclient: %w", err)
	}
}

// CloseSend ends the request body (the terminating chunk): the server
// settles the in-flight events, streams out their remaining results,
// and ends the response, after which Recv reports io.EOF. Idempotent.
func (c *Conn) CloseSend() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendClosed {
		return nil
	}
	c.sendClosed = true
	if err := c.flushLocked(); err != nil {
		return err
	}
	if err := c.cw.Close(); err != nil {
		return fmt.Errorf("streamclient: %w", err)
	}
	// The chunked writer's Close emits the zero-length chunk; the blank
	// line that ends the body is the caller's to write.
	if _, err := io.WriteString(c.bw, "\r\n"); err != nil {
		return fmt.Errorf("streamclient: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("streamclient: %w", err)
	}
	return nil
}

// Close tears the connection down. Results not yet received are lost
// client-side; the server still applies and settles every event it
// read (a dropped connection leaks nothing fleet-side). Safe after
// CloseSend; for a graceful shutdown call CloseSend, drain Recv until
// io.EOF, then Close.
func (c *Conn) Close() error {
	c.sendMu.Lock()
	c.sendClosed = true
	c.sendMu.Unlock()
	return c.conn.Close()
}
