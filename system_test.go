package videodist_test

import (
	"bytes"
	"testing"
	"time"

	videodist "repro"
	"repro/internal/trace"
)

func TestFacadeScenarioAndEmulation(t *testing.T) {
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 20, Gateways: 6, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := videodist.NewOraclePolicy(in, videodist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sc := &videodist.Scenario{Instance: in, Seed: 42}
	res, err := videodist.RunScenario(sc, oracle, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil || res.OverloadSamples != 0 {
		t.Fatalf("oracle scenario: feasibility %v, overloads %d", res.FeasibilityErr, res.OverloadSamples)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("RunScenario wrote no trace events")
	}

	rep, err := videodist.Emulate(in, res.Assignment, videodist.EmulationConfig{
		ChunkInterval: 200 * time.Microsecond,
		Chunks:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksDropped != 0 {
		t.Fatalf("emulation dropped %d chunks", rep.ChunksDropped)
	}
	for u := range rep.BytesReceived {
		if rep.BytesReceived[u] != rep.ExpectedBytes[u] {
			t.Fatalf("gateway %d: %d bytes, want %d", u, rep.BytesReceived[u], rep.ExpectedBytes[u])
		}
	}
}

func TestFacadeOnlineAndThresholdPolicies(t *testing.T) {
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 20, Gateways: 6, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	onl, err := videodist.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := videodist.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := &videodist.Scenario{Instance: in, Seed: 44}
	for _, pol := range []videodist.Policy{onl, thr} {
		res, err := videodist.RunScenario(sc, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.FeasibilityErr != nil {
			t.Fatalf("%s infeasible: %v", res.Policy, res.FeasibilityErr)
		}
	}
	if _, err := videodist.NewThresholdPolicy(in, 0); err == nil {
		t.Fatal("facade accepted margin 0")
	}
}

func TestFacadeAssignmentAndNormalize(t *testing.T) {
	a := videodist.NewAssignment(3)
	a.Add(0, 5)
	if !a.Has(0, 5) || a.NumUsers() != 3 {
		t.Fatal("facade NewAssignment broken")
	}
	in, err := videodist.NewRandomMMD(videodist.RandomMMD{Streams: 6, Users: 3, M: 2, MC: 1, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := videodist.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Gamma < 1 || norm.Mu() <= 2 {
		t.Fatalf("normalization degenerate: gamma %v mu %v", norm.Gamma, norm.Mu())
	}
	al, err := videodist.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		t.Fatal(err)
	}
	al.RunSequence(nil)
	if al.Value() < 0 {
		t.Fatal("negative value")
	}
}
