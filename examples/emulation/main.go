// Command emulation runs the full system twice: first as a
// deterministic discrete-event head-end simulation (streams arriving
// over virtual time, a policy admitting them, the multicast plant
// accounting delivery), then as a live goroutine emulation of the final
// assignment — one broadcaster goroutine per admitted stream fanning
// chunks out to one receiver goroutine per gateway.
//
// Run with:
//
//	go run ./examples/emulation [-channels N] [-gateways N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	videodist "repro"
)

func main() {
	channels := flag.Int("channels", 30, "catalog size")
	gateways := flag.Int("gateways", 8, "number of gateways")
	seed := flag.Int64("seed", 3, "workload seed")
	flag.Parse()
	if err := run(*channels, *gateways, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "emulation:", err)
		os.Exit(1)
	}
}

func run(channels, gateways int, seed int64) error {
	in, err := videodist.NewCableTV(videodist.CableTV{
		Channels: channels, Gateways: gateways, Seed: seed,
	})
	if err != nil {
		return err
	}

	// Phase 1: discrete-event scenario with the offline-oracle policy.
	oracle, err := videodist.NewOraclePolicy(in, videodist.Options{})
	if err != nil {
		return err
	}
	sc := &videodist.Scenario{Instance: in, Seed: seed}
	res, err := videodist.RunScenario(sc, oracle, nil)
	if err != nil {
		return err
	}
	fmt.Printf("discrete-event simulation (%s):\n", res.Policy)
	fmt.Printf("  offered %d streams, admitted %d, utility %.1f\n",
		res.StreamsOffered, res.StreamsAdmitted, res.Utility)
	fmt.Printf("  delivered %.0f Mb over %.0f virtual seconds, overload samples: %d/%d\n",
		res.DeliveredMb, res.EndTime, res.OverloadSamples, res.TotalSamples)
	if res.FeasibilityErr != nil {
		return fmt.Errorf("assignment infeasible: %w", res.FeasibilityErr)
	}

	// Phase 2: run the admitted assignment live.
	rep, err := videodist.Emulate(in, res.Assignment, videodist.EmulationConfig{
		ChunkInterval: time.Millisecond,
		Chunks:        50,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nlive goroutine emulation (%v wall clock):\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  chunks sent %d, dropped %d\n", rep.ChunksSent, rep.ChunksDropped)
	total := int64(0)
	for u, b := range rep.BytesReceived {
		total += b
		fmt.Printf("  %-8s received %8d bytes (expected %8d) from %d streams\n",
			in.Users[u].Name, b, rep.ExpectedBytes[u], res.Assignment.UserCount(u))
	}
	fmt.Printf("  total payload: %d bytes\n", total)
	return nil
}
