// Command cabletv reproduces the paper's motivating comparison on a
// realistic head-end workload: Zipf-popular channels, three server
// budgets (egress bandwidth, transcoding, input ports), gateways with
// downlink and revenue-cap constraints. It pits the Theorem 1.1 solver
// against the deployed-world threshold admission baseline and prints
// the utility and budget utilization of each.
//
// Run with:
//
//	go run ./examples/cabletv [-channels N] [-gateways N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	videodist "repro"
)

func main() {
	channels := flag.Int("channels", 60, "catalog size")
	gateways := flag.Int("gateways", 16, "number of neighborhood gateways")
	seed := flag.Int64("seed", 1, "workload seed")
	egress := flag.Float64("egress", 0.25, "egress budget as a fraction of catalog bandwidth")
	flag.Parse()

	if err := run(*channels, *gateways, *seed, *egress); err != nil {
		fmt.Fprintln(os.Stderr, "cabletv:", err)
		os.Exit(1)
	}
}

func run(channels, gateways int, seed int64, egress float64) error {
	in, err := videodist.NewCableTV(videodist.CableTV{
		Channels: channels, Gateways: gateways, Seed: seed, EgressFraction: egress,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d channels, %d gateways, m=%d budgets, upper bound %.1f\n",
		in.NumStreams(), in.NumUsers(), in.M(), videodist.UpperBound(in))

	solverAssn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		return err
	}
	thresholdAssn, err := videodist.Threshold(in, nil, 1.0)
	if err != nil {
		return err
	}

	measures := []string{"egress Mbps", "transcode", "ports"}
	show := func(name string, assn *videodist.Assignment) {
		fmt.Printf("\n%s: utility %.1f, %d streams transmitted\n",
			name, assn.Utility(in), assn.RangeSize())
		for i, label := range measures {
			fmt.Printf("  %-12s %6.1f / %6.1f (%.0f%%)\n", label,
				assn.ServerCost(in, i), in.Budgets[i],
				100*assn.ServerCost(in, i)/in.Budgets[i])
		}
	}
	show("theorem-1.1 solver", solverAssn)
	show("threshold baseline", thresholdAssn)

	gain := solverAssn.Utility(in) / thresholdAssn.Utility(in)
	fmt.Printf("\nsolver/threshold utility ratio: %.2fx", gain)
	fmt.Printf("  (skew alpha %.1f, %d bands, guarantee %.0fx)\n",
		report.Alpha, report.Bands, report.ApproxFactor)
	return nil
}
