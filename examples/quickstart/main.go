// Command quickstart is a 60-second tour of the public API: build a
// tiny hand-written MMD instance, solve it with the Theorem 1.1
// pipeline, and print the resulting channel lineups.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	videodist "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A head-end with two budgets: 20 Mbps of egress bandwidth and 2
	// input ports. Three channels; two gateways with 12 Mbps downlinks.
	in := &videodist.Instance{
		Streams: []videodist.Stream{
			{Name: "news-sd", Costs: []float64{4, 1}},   // 4 Mbps, 1 port
			{Name: "sports-hd", Costs: []float64{8, 1}}, // 8 Mbps, 1 port
			{Name: "movies-hd", Costs: []float64{8, 1}},
		},
		Users: []videodist.User{
			{
				Name:       "gateway-north",
				Utility:    []float64{2, 9, 5},
				Loads:      [][]float64{{4, 8, 8}}, // downlink Mbps per stream
				Capacities: []float64{12},
			},
			{
				Name:       "gateway-south",
				Utility:    []float64{3, 4, 8},
				Loads:      [][]float64{{4, 8, 8}},
				Capacities: []float64{12},
			},
		},
		Budgets: []float64{20, 2},
	}
	if err := in.Validate(); err != nil {
		return err
	}

	assn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("total utility: %.1f (a-priori guarantee: within %.1fx of optimal)\n",
		report.Value, report.ApproxFactor)
	fmt.Printf("local skew alpha: %.2f, bands solved: %d\n", report.Alpha, report.Bands)
	for u := range in.Users {
		fmt.Printf("%s receives:", in.Users[u].Name)
		for _, s := range assn.UserStreams(u) {
			fmt.Printf(" %s", in.Streams[s].Name)
		}
		fmt.Println()
	}

	// Compare with the exact optimum (the instance is tiny).
	_, opt, err := videodist.SolveExact(in, 0)
	if err != nil {
		return err
	}
	fmt.Printf("exact optimum: %.1f (achieved %.0f%%)\n", opt, 100*report.Value/opt)
	return nil
}
