// Command online demonstrates the Section 5 Allocate algorithm in its
// natural habitat: streams arrive one by one with no knowledge of the
// future, each is either multicast to a chosen set of gateways or
// rejected, and decisions are never revoked. The run prints the rolling
// budget loads and compares the final utility with the offline pipeline
// and the exact optimum.
//
// Run with:
//
//	go run ./examples/online [-streams N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	videodist "repro"
)

func main() {
	streams := flag.Int("streams", 14, "number of arriving streams")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()
	if err := run(*streams, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "online:", err)
		os.Exit(1)
	}
}

func run(streams int, seed int64) error {
	// Small-streams workload: the regime where Theorem 5.4 guarantees
	// both feasibility and (1 + 2 log2 mu)-competitiveness.
	in, err := videodist.SmallStreams{
		Base: videodist.RandomMMD{
			Streams: streams, Users: 5, M: 2, MC: 1, Seed: seed, Skew: 2,
		},
	}.Generate()
	if err != nil {
		return err
	}
	norm, err := videodist.Normalize(in)
	if err != nil {
		return err
	}
	if err := videodist.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
		return fmt.Errorf("small-streams hypothesis: %w", err)
	}
	fmt.Printf("gamma=%.2f  mu=%.1f  competitive bound=%.1f\n\n",
		norm.Gamma, norm.Mu(), norm.CompetitiveBound())

	al, err := videodist.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		return err
	}
	fmt.Println("arrival  decision      users  egress-load  value-so-far")
	for s := 0; s < in.NumStreams(); s++ {
		users := al.Offer(s)
		decision := "REJECT"
		if len(users) > 0 {
			decision = "admit "
		}
		fmt.Printf("%7d  %s  %5d  %10.2f  %12.1f\n",
			s, decision, len(users), al.ServerLoad(0), al.Value())
	}

	onlineValue := al.Assignment().Utility(in)
	offline, _, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nonline value:  %.1f\noffline value: %.1f\n", onlineValue, offline.Utility(in))
	if in.NumStreams() <= 18 {
		_, opt, err := videodist.SolveExact(in, 0)
		if err != nil {
			return err
		}
		fmt.Printf("exact optimum: %.1f (online achieved %.0f%%, bound allows %.0f%%)\n",
			opt, 100*onlineValue/opt, 100/norm.CompetitiveBound())
	}
	return nil
}
