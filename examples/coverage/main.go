// Command coverage demonstrates the Section 4 closing remark: the
// paper's multi-budget machinery maximizes any nonnegative,
// nondecreasing submodular set function under m knapsack constraints
// with an O(m) guarantee. Here the function is weighted maximum
// coverage: pick advertising slots (each covering a set of postal
// codes, each postal code worth its household count) under separate
// airtime and production-cost budgets.
//
// Run with:
//
//	go run ./examples/coverage [-slots N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/submodular"
)

func main() {
	slots := flag.Int("slots", 14, "number of advertising slots")
	seed := flag.Int64("seed", 5, "workload seed")
	flag.Parse()
	if err := run(*slots, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(slots int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	const zones = 30

	cov := &submodular.Coverage{
		Sets:    make([][]int, slots),
		Weights: make([]float64, zones),
	}
	for z := range cov.Weights {
		cov.Weights[z] = float64(500 + rng.Intn(5000)) // households
	}
	for e := range cov.Sets {
		for z := 0; z < zones; z++ {
			if rng.Float64() < 0.25 {
				cov.Sets[e] = append(cov.Sets[e], z)
			}
		}
	}
	if err := cov.Validate(); err != nil {
		return err
	}

	// Two budgets: airtime seconds and production cost.
	problem := &submodular.Problem{
		F:       cov,
		Costs:   make([][]float64, 2),
		Budgets: make([]float64, 2),
	}
	totals := [2]float64{}
	for i := range problem.Costs {
		problem.Costs[i] = make([]float64, slots)
		for e := range problem.Costs[i] {
			problem.Costs[i][e] = 10 + 50*rng.Float64()
			totals[i] += problem.Costs[i][e]
		}
		problem.Budgets[i] = 0.35 * totals[i]
	}

	res, err := submodular.Maximize(problem)
	if err != nil {
		return err
	}
	fmt.Printf("chose %d of %d slots covering %.0f households\n",
		len(res.Set), slots, res.Value)
	fmt.Printf("merged-budget greedy value before repair: %.0f\n", res.GreedyValue)
	for i := range problem.Budgets {
		spent := 0.0
		for _, e := range res.Set {
			spent += problem.Costs[i][e]
		}
		fmt.Printf("budget %d: %.1f / %.1f\n", i, spent, problem.Budgets[i])
	}
	fmt.Printf("slots: %v\n", res.Set)
	return nil
}
