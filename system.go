package videodist

import (
	"io"

	"repro/internal/emulation"
	"repro/internal/headend"
	"repro/internal/trace"
)

// System-level surface: the simulated head-end (arrivals over virtual
// time, pluggable admission policies, multicast plant underneath) and
// the live goroutine emulation. See internal/headend, internal/netsim,
// and internal/emulation for details.
type (
	// Scenario is a head-end simulation run description.
	Scenario = headend.Scenario
	// ScenarioResult summarizes a run.
	ScenarioResult = headend.Result
	// Policy decides admissions at stream-arrival time.
	Policy = headend.Policy
	// EmulationConfig tunes the live goroutine emulation.
	EmulationConfig = emulation.Config
	// EmulationReport summarizes a live run.
	EmulationReport = emulation.Report
	// TraceEvent is one record of a head-end trace.
	TraceEvent = trace.Event
)

// NewOnlinePolicy wraps the Section 5 allocator as an admission policy;
// guarded filters any decision that would violate a true constraint
// (use for instances that are not small-streams).
func NewOnlinePolicy(in *Instance, guarded bool) (*headend.OnlinePolicy, error) {
	return headend.NewOnlinePolicy(in, guarded)
}

// NewThresholdPolicy wraps the deployed-world baseline as an admission
// policy with the given safety margin in (0, 1].
func NewThresholdPolicy(in *Instance, margin float64) (*headend.ThresholdPolicy, error) {
	return headend.NewThresholdPolicy(in, margin)
}

// NewOraclePolicy precomputes the offline Theorem 1.1 solution and
// reveals it at arrival time — the reference point for online policies.
func NewOraclePolicy(in *Instance, opts Options) (*headend.OraclePolicy, error) {
	return headend.NewOraclePolicy(in, opts)
}

// RunScenario executes a head-end simulation under the given policy,
// optionally writing a JSONL trace.
func RunScenario(sc *Scenario, policy Policy, traceOut io.Writer) (*ScenarioResult, error) {
	if traceOut == nil {
		return sc.Run(policy, nil)
	}
	tw := trace.NewWriter(traceOut)
	res, err := sc.Run(policy, tw)
	if err != nil {
		return nil, err
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return res, nil
}

// Emulate runs an admitted assignment as live goroutines (one
// broadcaster per stream, one receiver per gateway) and reports
// delivered bytes.
func Emulate(in *Instance, assn *Assignment, cfg EmulationConfig) (*EmulationReport, error) {
	return emulation.Run(in, assn, cfg)
}
