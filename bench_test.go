// Benchmarks: one per experiment in DESIGN.md section 4 (E1-E10) plus
// the ablations (A1-A3). Each benchmark both times the relevant
// operation and reports the experiment's headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the shape
// of every claim. cmd/mmdbench prints the full tables.
package videodist_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	videodist "repro"
	"repro/internal/baseline"
	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/online"
	"repro/internal/reduction"
	"repro/internal/skew"
	"repro/internal/smd"
)

// BenchmarkE1GreedyRatio times FixedGreedy on unit-skew SMD instances
// and reports the measured worst approximation ratio vs exact OPT
// (Theorem 2.8 bound: 4.746).
func BenchmarkE1GreedyRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	type pair struct {
		in  *smd.Instance
		opt float64
	}
	pairs := make([]pair, 8)
	for i := range pairs {
		min, err := generator.RandomSMD{Streams: 10, Users: 4, Seed: rng.Int63(), Skew: 1}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		opt, err := exact.Solve(min, exact.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pairs[i] = pair{in: smd.FromMMD(min), opt: opt.Value}
	}
	worst := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		res, err := smd.FixedGreedy(p.in)
		if err != nil {
			b.Fatal(err)
		}
		if p.opt > 0 {
			worst = math.Max(worst, p.opt/res.BestValue)
		}
	}
	b.ReportMetric(worst, "worst-ratio")
	b.ReportMetric(3*math.E/(math.E-1), "bound")
}

// BenchmarkE2ReducedBudget times raw greedy and reports the minimum
// augmented-value ratio vs OPT (Theorem 2.5 / Lemma 2.2 bound 1-1/e).
func BenchmarkE2ReducedBudget(b *testing.B) {
	min, err := generator.RandomSMD{Streams: 10, Users: 4, Seed: 102, Skew: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	in := smd.FromMMD(min)
	opt, err := exact.Solve(min, exact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ratio := math.Inf(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smd.Greedy(in)
		if err != nil {
			b.Fatal(err)
		}
		if opt.Value > 0 {
			ratio = math.Min(ratio, res.AugmentedValue/opt.Value)
		}
	}
	b.ReportMetric(ratio, "min-aug/OPT")
	b.ReportMetric(1-1/math.E, "bound")
}

// BenchmarkE3SkewSweep times classify-and-select at alpha=64 and
// reports the measured ratio vs the Theorem 3.1 bound.
func BenchmarkE3SkewSweep(b *testing.B) {
	in, err := generator.RandomSMD{Streams: 12, Users: 5, Seed: 103, Skew: 64}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	opt, err := exact.Solve(in, exact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _, err := skew.Solve(in, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = a.Utility(in)
	}
	if last > 0 {
		b.ReportMetric(opt.Value/last, "ratio")
	}
}

// BenchmarkE4PipelineRatio times the full Theorem 1.1 pipeline on an
// m=3, mc=2 instance and reports the measured ratio.
func BenchmarkE4PipelineRatio(b *testing.B) {
	in, err := generator.RandomMMD{Streams: 10, Users: 4, M: 3, MC: 2, Seed: 104, Skew: 4}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	opt, err := exact.Solve(in, exact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _, err := core.Solve(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = a.Utility(in)
	}
	if last > 0 {
		b.ReportMetric(opt.Value/last, "ratio")
	}
}

// BenchmarkE5Tightness times the paper-faithful lift on the Section 4.2
// family (m=4, mc=3) and reports the measured loss vs m*mc = 12.
func BenchmarkE5Tightness(b *testing.B) {
	in, err := reduction.TightnessInstance(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	view, err := reduction.ToSMD(in)
	if err != nil {
		b.Fatal(err)
	}
	optAssn := reduction.TightnessOptimal(in)
	optVal := optAssn.Utility(in)
	var loss float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := reduction.Lift(view, optAssn)
		if err != nil {
			b.Fatal(err)
		}
		loss = optVal / rep.Value
	}
	b.ReportMetric(loss, "measured-loss")
	b.ReportMetric(12, "m*mc")
}

// BenchmarkE6OnlineRatio times the online allocator over a full arrival
// sequence and reports the competitive ratio vs exact OPT and the
// Theorem 5.4 bound.
func BenchmarkE6OnlineRatio(b *testing.B) {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 12, Users: 3, M: 2, MC: 1, Seed: 106, Skew: 2},
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	norm, err := online.Normalize(in)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := exact.Solve(in, exact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := online.NewAllocator(norm.Instance, norm.Mu())
		if err != nil {
			b.Fatal(err)
		}
		a := al.RunSequence(nil)
		last = a.Utility(in)
	}
	if last > 0 {
		b.ReportMetric(opt.Value/last, "ratio")
	}
	b.ReportMetric(norm.CompetitiveBound(), "bound")
}

// BenchmarkE7GreedyScaling is the O(n^2) scaling experiment: run with
// -bench 'E7' and compare ns/op across the sub-benchmark sizes.
func BenchmarkE7GreedyScaling(b *testing.B) {
	for _, size := range []struct{ s, u int }{{50, 10}, {100, 20}, {200, 40}, {400, 80}} {
		min, err := generator.RandomSMD{Streams: size.s, Users: size.u, Seed: 107, Skew: 1}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		in := smd.FromMMD(min)
		b.Run(benchName(size.s, size.u), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := smd.FixedGreedy(in); err != nil {
					b.Fatal(err)
				}
			}
			n := float64(size.s * size.u)
			b.ReportMetric(n*n, "n^2")
		})
	}
}

func benchName(s, u int) string {
	return "streams=" + itoa(s) + "/users=" + itoa(u)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// BenchmarkE8PartialEnum compares greedy against partial enumeration
// with growing seed sizes (quality/time trade-off of Section 2.3).
func BenchmarkE8PartialEnum(b *testing.B) {
	min, err := generator.RandomSMD{Streams: 10, Users: 4, Seed: 108, Skew: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	in := smd.FromMMD(min)
	for _, seed := range []int{0, 1, 2} {
		seed := seed
		b.Run("seed="+itoa(seed), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := smd.PartialEnum(in, seed)
				if err != nil {
					b.Fatal(err)
				}
				last = res.BestValue
			}
			b.ReportMetric(last, "value")
		})
	}
}

// BenchmarkE9VsThreshold times the pipeline and the threshold baseline
// on cable-TV workloads and reports the aggregate utility ratio across
// seeds (per-seed results vary; the claim is about the aggregate).
func BenchmarkE9VsThreshold(b *testing.B) {
	instances := make([]*videodist.Instance, 5)
	for seed := range instances {
		in, err := generator.CableTV{
			Channels: 50, Gateways: 12, Seed: int64(seed), EgressFraction: 0.2,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		instances[seed] = in
	}
	var solverVal, thrVal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solverVal, thrVal = 0, 0
		for _, in := range instances {
			a, _, err := core.Solve(in, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			t, err := baseline.Threshold(in, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			solverVal += a.Utility(in)
			thrVal += t.Utility(in)
		}
	}
	if thrVal > 0 {
		b.ReportMetric(solverVal/thrVal, "solver/threshold")
	}
}

// BenchmarkE10EndToEnd times one full head-end simulation (arrivals,
// admission, delivery accounting) under the oracle policy and reports
// overload samples (must be 0).
func BenchmarkE10EndToEnd(b *testing.B) {
	in, err := generator.CableTV{Channels: 40, Gateways: 10, Seed: 110}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	overloads := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := headend.NewOraclePolicy(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sc := &headend.Scenario{Instance: in, Seed: 110}
		res, err := sc.Run(pol, nil)
		if err != nil {
			b.Fatal(err)
		}
		overloads = res.OverloadSamples
	}
	b.ReportMetric(float64(overloads), "overload-samples")
}

// BenchmarkA1LiftAblation compares the paper-faithful lift with the
// greedy-merging lift on a random MMD instance.
func BenchmarkA1LiftAblation(b *testing.B) {
	in, err := generator.RandomMMD{Streams: 12, Users: 5, M: 3, MC: 2, Seed: 111, Skew: 4}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	var paper, merged float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap, _, err := core.Solve(in, core.Options{PaperFaithfulLift: true})
		if err != nil {
			b.Fatal(err)
		}
		am, _, err := core.Solve(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		paper, merged = ap.Utility(in), am.Utility(in)
	}
	if paper > 0 {
		b.ReportMetric(merged/paper, "merged/paper")
	}
}

// BenchmarkA2BlockingFamily reports the raw-greedy hole at gap=1000.
func BenchmarkA2BlockingFamily(b *testing.B) {
	min, err := generator.BlockingFamily(1000)
	if err != nil {
		b.Fatal(err)
	}
	in := smd.FromMMD(min)
	var raw, fixed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smd.FixedGreedy(in)
		if err != nil {
			b.Fatal(err)
		}
		raw, fixed = res.Greedy.SemiValue, res.BestValue
	}
	if raw > 0 {
		b.ReportMetric(fixed/raw, "fixed/raw")
	}
}

// BenchmarkA3MuSensitivity times the allocator at the paper's mu.
func BenchmarkA3MuSensitivity(b *testing.B) {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 30, Users: 6, M: 2, MC: 1, Seed: 113, Skew: 2},
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	norm, err := online.Normalize(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := online.NewAllocator(norm.Instance, norm.Mu())
		if err != nil {
			b.Fatal(err)
		}
		al.RunSequence(nil)
	}
}

// BenchmarkEmulation times the live goroutine emulation end to end.
func BenchmarkEmulation(b *testing.B) {
	in, err := generator.CableTV{Channels: 20, Gateways: 6, Seed: 114}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	assn, _, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := videodist.EmulationConfig{ChunkInterval: 100 * time.Microsecond, Chunks: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := videodist.Emulate(in, assn, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The cluster benchmark bodies live in internal/benchkit so that
// `mmdbench -json` can snapshot the identical measurements into
// BENCH_serving.json (the machine-readable serving-path baseline).
//
// BenchmarkClusterSerial processes all 8 tenants on a single shard
// worker — the serial-loop baseline. BenchmarkClusterSharded processes
// the same fleet with one shard per tenant, so admission across tenants
// runs in parallel: tenants are independent, so with GOMAXPROCS >= 4
// the sharded fleet should process the same event stream at >= 2x the
// serial-loop throughput, with bit-identical per-tenant results (the
// cluster's determinism contract, asserted by E12 and the cluster
// package tests).
func BenchmarkClusterSerial(b *testing.B)  { benchkit.ClusterWorkload(b, 1) }
func BenchmarkClusterSharded(b *testing.B) { benchkit.ClusterWorkload(b, 8) }

// BenchmarkClusterAck drives the same 8-tenant workload through the
// serving API v2 session methods — every event carries a completion
// channel and the caller blocks for its typed result — to measure the
// per-event ack overhead against the fire-and-forget replay path
// (BenchmarkClusterSerial/Sharded process the identical schedule via
// RunWorkload). Request/response arrivals flush the batch they join,
// so this is also the no-coalescing bound of the batching design.
func BenchmarkClusterAck(b *testing.B) { benchkit.ClusterAck(b) }

// BenchmarkCatalogAdmission sweeps the serving API v3 admission fast
// path — the scaled feasibility guard (FitsDeltaScaled/AddScaled) the
// fleet catalog prices discounted admissions with. isolated is scale 1
// (bit-identical decisions to the PR 3 ledger guard), shared the
// SharedOrigin replication fraction. Both sub-benchmarks must report 0
// allocs/op: the discount adds one float multiply to the delta query,
// never an allocation.
func BenchmarkCatalogAdmission(b *testing.B) {
	b.Run("isolated", func(b *testing.B) { benchkit.CatalogAdmissionLedger(b, 1) })
	b.Run("shared", func(b *testing.B) { benchkit.CatalogAdmissionLedger(b, 0.25) })
}

// BenchmarkClusterCatalog drives the 8-tenant fleet entirely through
// fleet-identified admission (OfferCatalogStream/DepartCatalogStream):
// every admission runs the catalog's acquire/admit/commit protocol
// across the registry owner and the shard worker. Compare against
// BenchmarkClusterAck for the per-event cost of fleet identity.
func BenchmarkClusterCatalog(b *testing.B) {
	b.Run("isolated", func(b *testing.B) { benchkit.ClusterCatalog(b, false) })
	b.Run("shared", func(b *testing.B) { benchkit.ClusterCatalog(b, true) })
}

// BenchmarkStreamIngest measures remote ingestion throughput through
// the real HTTP front end (serving API v4): the same ~10k-event
// workload submitted over one persistent /v1/stream NDJSON connection,
// as :batch posts of 16 events, and as one POST per event. The
// stream's pipelining amortizes the per-request round trip away, so
// events/sec for stream must be >= 2x the per-request paths — the v4
// acceptance bar recorded in BENCH_serving.json.
func BenchmarkStreamIngest(b *testing.B) {
	b.Run("stream", func(b *testing.B) { benchkit.StreamIngest(b, "stream") })
	b.Run("batch16", func(b *testing.B) { benchkit.StreamIngest(b, "batch") })
	b.Run("single", func(b *testing.B) { benchkit.StreamIngest(b, "single") })
}

// BenchmarkStreamIngestWAL reruns the persistent-stream ingestion
// workload with the durability subsystem on, one sub-benchmark per
// WAL sync policy. The gap to BenchmarkStreamIngest/stream is the
// WAL's whole price on the hot ingest path; the acceptance bar is
// sync=batch (group commit) sustaining >= 70% of the WAL-off
// events/sec, recorded in BENCH_serving.json's durability section.
func BenchmarkStreamIngestWAL(b *testing.B) {
	b.Run("none", func(b *testing.B) { benchkit.StreamIngestWAL(b, videodist.WALSyncNone) })
	b.Run("interval", func(b *testing.B) { benchkit.StreamIngestWAL(b, videodist.WALSyncInterval) })
	b.Run("batch", func(b *testing.B) { benchkit.StreamIngestWAL(b, videodist.WALSyncBatch) })
}

// BenchmarkSaturation runs one cell of the saturation harness — the
// concurrent-submitter session workload behind BENCH_serving.json's
// scaling curve — with GOMAXPROCS pinned above 1, so `go test -bench`
// (and CI's -benchtime=1x smoke) exercises concurrent submitters and
// the ack-latency histogram on every run. The full shards x GOMAXPROCS
// grid is swept by `mmdbench -json`.
func BenchmarkSaturation(b *testing.B) {
	procs := runtime.NumCPU()
	if procs > 4 {
		procs = 4
	}
	if procs < 2 {
		procs = 2
	}
	b.Run(fmt.Sprintf("shards_8_procs_%d", procs), func(b *testing.B) {
		benchkit.SaturationBench(b, 8, procs)
	})
}

// BenchmarkWorkloadIngest measures ingestion of the generator
// subsystem's skewed traffic — Zipf popularity with a flash crowd, and
// diurnal churn — over one persistent /v1/stream connection against a
// catalog-enabled fleet. The gap to BenchmarkStreamIngest/stream is
// what skew, catalog admission, and gateway churn together cost on the
// same wire path; recorded in BENCH_serving.json's workloads section.
func BenchmarkWorkloadIngest(b *testing.B) {
	for _, kind := range benchkit.WorkloadKinds() {
		b.Run(kind, func(b *testing.B) { benchkit.WorkloadIngest(b, kind) })
	}
}

// BenchmarkExperimentSuite runs the entire mmdbench table suite once
// per iteration — the one-stop reproduction benchmark.
func BenchmarkExperimentSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.All(); err != nil {
			b.Fatal(err)
		}
	}
}
