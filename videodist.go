// Package videodist is the public API of this reproduction of
// Patt-Shamir & Rawitz, "Video distribution under multiple constraints"
// (ICDCS 2008; Theoretical Computer Science 412, 2011).
//
// The library solves the Multi-Budget Multi-Client Distribution problem
// (MMD): choose which video streams a server multicasts, and which of
// them each client receives, to maximize total utility subject to m
// server budgets (bandwidth, processing, ports, ...) and per-client
// capacity constraints (downlink, revenue caps, ...).
//
// # Quick start
//
//	in, _ := videodist.NewCableTV(videodist.CableTV{Channels: 50, Gateways: 12, Seed: 1})
//	assn, report, err := videodist.Solve(in, videodist.Options{})
//	// assn.UserStreams(u) is the channel lineup of gateway u;
//	// report.Value is the total utility.
//
// Solve runs the paper's Theorem 1.1 pipeline: the multi-budget
// instance is reduced to a single-budget one (Section 4), decomposed
// into unit-skew bands (Section 3), each band is solved by the fixed
// greedy (Section 2, Theorem 2.8), and every candidate is lifted back
// through the output transformation. The guarantee is
// O(m·m_c·log(2α·m_c)) in O(n²) time.
//
// SolveOnline runs the Section 5 Allocate algorithm: streams are
// considered in arrival order against exponential budget costs; for
// "small" streams it is (1+2·log₂µ)-competitive and never violates a
// budget. Use Normalize/CheckSmallStreams to verify the hypothesis.
//
// NewCluster operates many independent head-end tenants as one fleet:
// each tenant is pinned to a shard worker, stream-arrival and churn
// events are routed over channels with batched admission, and results
// are aggregated deterministically. The serving surface is typed and
// per operation — OfferStream/DepartStream/UserLeave/UserJoin/Resolve
// sessions with sentinel errors (ErrUnknownTenant, ErrQueueFull,
// ErrClosed, ErrCanceled) and configurable backpressure; Resolve can
// install the offline Theorem 1.1 solution make-before-break
// (cmd/mmdserve is the CLI and HTTP/JSON front end). With
// CatalogOptions the fleet shares streams across tenants (serving API
// v3): OfferCatalogStream/DepartCatalogStream admit by fleet-wide
// CatalogID under cross-shard reference counting, and the
// CatalogSharedOrigin cost model charges later tenants only the
// multicast-replication fraction of an already-transcoded origin.
// ApplyBatch applies a single-tenant event sequence as one shard
// message (the batched-ingestion path), and OpenStream (serving API v4)
// opens a persistent pipelined session — Submit events without waiting,
// Recv typed results in submission order under a bounded in-flight
// window — which the HTTP front end exposes as a long-lived NDJSON
// stream (POST /v1/stream; repro/streamclient is the Go client).
//
// ARCHITECTURE.md maps how these layers (solvers → headend → cluster →
// catalog → serving) fit together and which invariants pin them.
//
// Everything — the solvers, the exact branch-and-bound reference, the
// workload generators, the discrete-event multicast network, and the
// live goroutine emulation — lives in internal packages; this package
// re-exports the surface a downstream user needs. Examples under
// examples/ and the experiment harness in bench_test.go exercise it.
package videodist

import (
	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/mmd"
	"repro/internal/online"
	"repro/internal/wal"
)

// Core problem types (see internal/mmd for full documentation).
type (
	// Instance is a complete MMD problem instance.
	Instance = mmd.Instance
	// Stream is one multicast stream with its server cost vector.
	Stream = mmd.Stream
	// User is one client with utilities, loads, and capacities.
	User = mmd.User
	// Assignment maps users to stream sets. Internally it maintains
	// sorted per-user stream slices and a sorted range, so the read
	// paths (UserStreams, Range, Utility, ServerCost) are allocation-
	// free or single-alloc and never re-sort.
	Assignment = mmd.Assignment
	// LoadLedger incrementally maintains an assignment's server costs
	// and per-user loads, answering the guarded-admission question in
	// O(measures) per candidate (FitsDelta/CanAdmit) instead of a full
	// CheckFeasible rescan — the serving hot path's feasibility oracle.
	LoadLedger = mmd.LoadLedger
)

// NewLoadLedger returns an empty ledger for the instance; mirror every
// Assignment mutation into it (or Rebuild from the assignment) and ask
// FitsDelta before admitting.
func NewLoadLedger(in *Instance) *LoadLedger { return mmd.NewLoadLedger(in) }

// Solver configuration and reporting.
type (
	// Options configures Solve.
	Options = core.Options
	// Report describes a Solve run (value, skew, bands, guarantee).
	Report = core.Report
	// Normalization holds a globally normalized instance with its
	// global skew γ and µ (Section 5).
	Normalization = online.Normalization
	// Allocator is the stateful online algorithm of Section 5.
	Allocator = online.Allocator
)

// Algorithm selectors for Options.Algorithm.
const (
	// AlgoFixedGreedy is the O(n²) Theorem 2.8 building block (default).
	AlgoFixedGreedy = core.AlgoFixedGreedy
	// AlgoPartialEnum is the sharper, slower Section 2.3 building block.
	AlgoPartialEnum = core.AlgoPartialEnum
)

// Workload generator configurations (see internal/generator).
type (
	// CableTV generates the paper's motivating head-end scenario.
	CableTV = generator.CableTV
	// RandomSMD generates random single-budget instances with a target
	// local skew.
	RandomSMD = generator.RandomSMD
	// RandomMMD generates random multi-budget instances.
	RandomMMD = generator.RandomMMD
	// SmallStreams generates instances satisfying the Section 5
	// small-streams hypothesis.
	SmallStreams = generator.SmallStreams
)

// Sharded multi-tenant serving layer (see internal/cluster for the
// shard/batch/determinism contract). This is the serving API v2
// surface: typed per-operation request/response sessions replace the
// PR-1 fire-and-forget Submit(Event) — call OfferStream, DepartStream,
// UserLeave, UserJoin, and Resolve directly on a Cluster.
type (
	// Cluster operates many head-end tenants as one fleet: per-shard
	// workers, batched admission, deterministic aggregation, and typed
	// per-operation session methods (OfferStream, DepartStream,
	// UserLeave, UserJoin, Resolve).
	Cluster = cluster.Cluster
	// ClusterOptions configures shard count, batch size, queue depth,
	// backpressure mode, and churn-triggered re-solves.
	ClusterOptions = cluster.Options
	// ClusterTenant describes one tenant (instance + admission policy).
	ClusterTenant = cluster.TenantConfig
	// ClusterWorkload is a deterministic synthetic event schedule.
	ClusterWorkload = cluster.Workload
	// FleetSnapshot is the aggregated fleet state at a barrier.
	FleetSnapshot = cluster.FleetSnapshot
	// TenantSnapshot is one tenant's summary within a FleetSnapshot.
	TenantSnapshot = cluster.TenantSnapshot
	// AdmissionPolicy decides which users receive an arriving stream.
	AdmissionPolicy = headend.Policy

	// OfferResult is the typed outcome of Cluster.OfferStream.
	OfferResult = cluster.OfferResult
	// DepartResult is the typed outcome of Cluster.DepartStream.
	DepartResult = cluster.DepartResult
	// ChurnResult is the typed outcome of Cluster.UserLeave / UserJoin.
	ChurnResult = cluster.ChurnResult
	// ResolveResult is the typed outcome of Cluster.Resolve.
	ResolveResult = cluster.ResolveResult
	// ResolveOptions configures Cluster.Resolve (Install swaps in the
	// offline assignment make-before-break).
	ResolveOptions = cluster.ResolveOptions
	// Backpressure selects block-with-ctx vs fail-fast enqueueing.
	Backpressure = cluster.Backpressure
	// ClusterEvent is one routed tenant event; the element type of
	// Cluster.ApplyBatch's input and Cluster's streaming Submit.
	ClusterEvent = cluster.Event
	// EventResult is one typed per-event outcome of Cluster.ApplyBatch.
	EventResult = cluster.EventResult

	// StreamConn is a persistent pipelined ingestion session (serving
	// API v4): open with Cluster.OpenStream, Submit events without
	// waiting, Recv typed results in submission order.
	StreamConn = cluster.StreamConn
	// StreamOptions configures a StreamConn (in-flight window size and
	// window backpressure mode).
	StreamOptions = cluster.StreamOptions
	// StreamResult is one event's typed outcome on a StreamConn.
	StreamResult = cluster.StreamResult
)

// Fleet catalog (serving API v3): streams as first-class fleet entities
// with cross-shard reference-counted admission (see internal/catalog
// and the cluster package docs).
type (
	// CatalogID is a stable fleet-wide stream identity.
	CatalogID = catalog.ID
	// CatalogBinding maps one CatalogID to each tenant's local stream
	// index.
	CatalogBinding = catalog.Binding
	// CatalogCostModel prices a catalog admission from the cross-shard
	// reference count.
	CatalogCostModel = catalog.CostModel
	// CatalogIsolated is the default model: full price everywhere,
	// bit-identical to the pre-catalog serving path.
	CatalogIsolated = catalog.Isolated
	// CatalogSharedOrigin is the regional-CDN model: first admitting
	// tenant pays the full origin cost, later tenants the replication
	// fraction, last departure evicts the origin.
	CatalogSharedOrigin = catalog.SharedOrigin
	// CatalogOptions configures the fleet catalog on ClusterOptions.
	CatalogOptions = cluster.CatalogOptions
	// CatalogResult is the typed outcome of Cluster.OfferCatalogStream
	// and Cluster.DepartCatalogStream.
	CatalogResult = cluster.CatalogResult
	// CatalogSnapshot is the registry state embedded in FleetSnapshot
	// (per-stream reference counts, origin-cost savings).
	CatalogSnapshot = catalog.Snapshot
	// CatalogService is the registry seam CatalogOptions.Remote takes
	// (serving API v7): a fleet node plugs in a wire client dialed
	// against a catalog service process (internal/catalog/remote) in
	// place of its in-process registry.
	CatalogService = catalog.Service
)

// Durability (serving API v5): per-shard write-ahead logging,
// checkpointed recovery, and live resharding (see internal/wal for the
// record format and internal/cluster's wal.go for the recovery
// contract). Enable by setting ClusterOptions.WAL; reopen a crashed
// fleet's log with RecoverCluster; change the shard count of a live
// WAL-backed fleet with Cluster.Reshard.
type (
	// WALOptions configures the durability log on ClusterOptions
	// (directory, sync policy, checkpoint cadence).
	WALOptions = cluster.WALOptions
	// WALSyncPolicy selects when appended records are fsynced.
	WALSyncPolicy = wal.SyncPolicy
	// WALManifest is a checkpoint: the fleet's rendered state sealed
	// into the log as a recovery verification fence.
	WALManifest = wal.Manifest
	// RecoveryReport summarizes what RecoverCluster replayed, repaired,
	// and verified.
	RecoveryReport = cluster.RecoveryReport
	// WALFS is the filesystem seam the log writes segments through;
	// WALOptions.FS overrides it (fault injection — see internal/chaos).
	WALFS = wal.FS
	// WALFile is one open segment handle behind WALFS.
	WALFile = wal.File
)

// Sync policies for WALOptions.Sync.
const (
	// WALSyncNone never fsyncs on the hot path (bounded loss on crash).
	WALSyncNone = wal.SyncNone
	// WALSyncInterval fsyncs on a background cadence.
	WALSyncInterval = wal.SyncInterval
	// WALSyncBatch is group commit: every acked event is durable (the
	// default).
	WALSyncBatch = wal.SyncBatch
)

// ErrNoWAL reports a durability operation (Checkpoint, Reshard,
// RecoverCluster) on a cluster built without WALOptions.
var ErrNoWAL = cluster.ErrNoWAL

// ParseWALSyncPolicy maps the mmdserve flag spelling ("none",
// "interval", "batch", or empty for the default) to a policy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	return wal.ParseSyncPolicy(s)
}

// RecoverCluster reopens the write-ahead log named by opts.WAL.Dir,
// replays it into a fresh fleet built from tenants (which must
// regenerate the same instances the crashed process served), verifies
// the replayed state against the last checkpoint manifest, repairs
// catalog references the crash tore, and goes live. The recovered
// fleet is bit-identical to one that never crashed: every event whose
// ack was delivered is replayed, per-tenant tables and catalog renders
// match exactly.
func RecoverCluster(tenants []ClusterTenant, opts ClusterOptions) (*Cluster, *RecoveryReport, error) {
	return cluster.Recover(tenants, opts)
}

// Event types for ClusterEvent (the ApplyBatch element type).
const (
	// ClusterStreamArrival offers ClusterEvent.Stream to the tenant.
	ClusterStreamArrival = cluster.EventStreamArrival
	// ClusterStreamDeparture removes a carried stream.
	ClusterStreamDeparture = cluster.EventStreamDeparture
	// ClusterUserLeave / ClusterUserJoin churn gateway ClusterEvent.User.
	ClusterUserLeave = cluster.EventUserLeave
	ClusterUserJoin  = cluster.EventUserJoin
	// ClusterResolve re-runs the offline pipeline (ClusterEvent.Install
	// installs).
	ClusterResolve = cluster.EventResolve
)

// Backpressure modes for ClusterOptions.Backpressure.
const (
	// BackpressureBlock blocks a session call until its shard queue has
	// room or the context is done (the default).
	BackpressureBlock = cluster.BackpressureBlock
	// BackpressureReject fails fast with ErrQueueFull.
	BackpressureReject = cluster.BackpressureReject
)

// Sentinel errors of the serving API; match with errors.Is.
var (
	// ErrUnknownTenant reports a tenant index outside the fleet.
	ErrUnknownTenant = cluster.ErrUnknownTenant
	// ErrQueueFull reports a full shard queue under BackpressureReject.
	ErrQueueFull = cluster.ErrQueueFull
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = cluster.ErrClosed
	// ErrCanceled reports a canceled or expired context; it also
	// matches the context package's error under errors.Is.
	ErrCanceled = cluster.ErrCanceled
	// ErrNoCatalog reports a catalog call on a cluster built without
	// CatalogOptions.
	ErrNoCatalog = cluster.ErrNoCatalog
	// ErrUnknownCatalogStream reports a CatalogID the fleet does not
	// know, or one the tenant has no binding for.
	ErrUnknownCatalogStream = cluster.ErrUnknownCatalogStream
	// ErrNotDurable reports an event that was applied but whose WAL
	// group commit failed: the ack is withheld and this error delivered
	// instead. Treat it like a crash — recover, then re-submit and let
	// seq-level dedup keep the replay exactly-once.
	ErrNotDurable = cluster.ErrNotDurable
)

// IdentityCatalogBindings builds the fully overlapping catalog shape
// for same-shaped fleets: streams entries, each bound at every tenant
// under local index s, with id naming entry s.
func IdentityCatalogBindings(tenants, streams int, id func(s int) CatalogID) []CatalogBinding {
	return catalog.IdentityBindings(tenants, streams, id)
}

// NewCluster builds a sharded multi-tenant head-end cluster and starts
// its shard workers. Close it when done.
func NewCluster(tenants []ClusterTenant, opts ClusterOptions) (*Cluster, error) {
	return cluster.New(tenants, opts)
}

// NewAdmissionPolicy builds a named admission policy ("online",
// "online-unguarded", "threshold", "oracle", "static") for an instance.
func NewAdmissionPolicy(in *Instance, kind string) (AdmissionPolicy, error) {
	return headend.NewPolicyByName(in, kind)
}

// Solve runs the offline Theorem 1.1 pipeline and returns a feasible
// assignment together with a report of the run.
func Solve(in *Instance, opts Options) (*Assignment, *Report, error) {
	return core.Solve(in, opts)
}

// SolveOnline normalizes the instance and runs the Section 5 Allocate
// algorithm over all streams in index order, returning the assignment
// and the normalization (µ, γ, competitive bound). The assignment is
// guaranteed feasible when the instance satisfies the small-streams
// hypothesis; otherwise an error is returned.
func SolveOnline(in *Instance) (*Assignment, *Normalization, error) {
	return online.Solve(in)
}

// NewAllocator builds a stateful online allocator for a normalized
// instance; call Offer(stream) as streams arrive.
func NewAllocator(in *Instance, mu float64) (*Allocator, error) {
	return online.NewAllocator(in, mu)
}

// Normalize rescales the instance to satisfy the paper's equation (1)
// and computes the global skew γ.
func Normalize(in *Instance) (*Normalization, error) {
	return online.Normalize(in)
}

// CheckSmallStreams verifies the Theorem 5.4 hypothesis
// (c_i(S) ≤ B_i/log₂µ everywhere) on a normalized instance.
func CheckSmallStreams(in *Instance, mu float64) error {
	return online.CheckSmallStreams(in, mu)
}

// SolveExact returns an optimal assignment by branch and bound. It is
// exponential and intended for small instances (≲20 streams) used as
// the OPT reference in experiments.
func SolveExact(in *Instance, maxStreams int) (*Assignment, float64, error) {
	res, err := exact.Solve(in, exact.Options{MaxStreams: maxStreams})
	if err != nil {
		return nil, 0, err
	}
	return res.Assignment, res.Value, nil
}

// UpperBound returns a polynomial-time upper bound on the optimal
// utility (fractional relaxations of the server and user constraints).
func UpperBound(in *Instance) float64 {
	return bounds.UpperBound(in)
}

// Threshold runs the deployed-world baseline the paper argues against:
// utility-blind admission under safety margins. order nil means catalog
// order; margin is the fraction of each budget the policy will fill.
func Threshold(in *Instance, order []int, margin float64) (*Assignment, error) {
	return baseline.Threshold(in, order, margin)
}

// NewCableTV generates the cable-TV workload: m = 3 server budgets
// (egress Mbps, transcoding, ports), Zipf channel popularity, gateways
// with downlink and revenue-cap constraints.
func NewCableTV(cfg CableTV) (*Instance, error) { return cfg.Generate() }

// NewRandomSMD generates a random single-budget instance.
func NewRandomSMD(cfg RandomSMD) (*Instance, error) { return cfg.Generate() }

// NewRandomMMD generates a random multi-budget instance.
func NewRandomMMD(cfg RandomMMD) (*Instance, error) { return cfg.Generate() }

// NewAssignment returns an empty assignment for numUsers users.
func NewAssignment(numUsers int) *Assignment { return mmd.NewAssignment(numUsers) }

// LocalSkew returns the instance's local skew α (Section 3).
func LocalSkew(in *Instance) (float64, error) { return mmd.LocalSkew(in) }
