package videodist_test

import (
	"bytes"
	"testing"

	videodist "repro"
	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/mmd"
	"repro/internal/online"
	"repro/internal/trace"
)

// TestIntegrationAllFamiliesAllSolvers runs every workload family
// through every solver and checks the universal invariants: validity,
// feasibility, and value <= upper bound.
func TestIntegrationAllFamiliesAllSolvers(t *testing.T) {
	families := map[string]func() (*mmd.Instance, error){
		"cabletv": func() (*mmd.Instance, error) {
			return generator.CableTV{Channels: 25, Gateways: 7, Seed: 61}.Generate()
		},
		"random-smd": func() (*mmd.Instance, error) {
			return generator.RandomSMD{Streams: 20, Users: 6, Seed: 62, Skew: 16}.Generate()
		},
		"random-mmd": func() (*mmd.Instance, error) {
			return generator.RandomMMD{Streams: 20, Users: 6, M: 3, MC: 2, Seed: 63, Skew: 8}.Generate()
		},
		"small-streams": func() (*mmd.Instance, error) {
			return generator.SmallStreams{
				Base: generator.RandomMMD{Streams: 30, Users: 6, M: 2, MC: 1, Seed: 64, Skew: 2},
			}.Generate()
		},
	}
	for name, gen := range families {
		name, gen := name, gen
		t.Run(name, func(t *testing.T) {
			in, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Validate(); err != nil {
				t.Fatal(err)
			}
			ub := bounds.UpperBound(in)

			type solver struct {
				name string
				run  func() (*mmd.Assignment, error)
			}
			solvers := []solver{
				{"pipeline", func() (*mmd.Assignment, error) {
					a, _, err := core.Solve(in, core.Options{})
					return a, err
				}},
				{"pipeline-paper", func() (*mmd.Assignment, error) {
					a, _, err := core.Solve(in, core.Options{PaperFaithfulLift: true})
					return a, err
				}},
				{"threshold", func() (*mmd.Assignment, error) {
					return baseline.Threshold(in, nil, 1)
				}},
				{"static-greedy", func() (*mmd.Assignment, error) {
					return baseline.StaticGreedy(in)
				}},
				{"cheapest-first", func() (*mmd.Assignment, error) {
					return baseline.CheapestFirst(in)
				}},
			}
			if name == "small-streams" {
				solvers = append(solvers, solver{"online", func() (*mmd.Assignment, error) {
					a, _, err := online.Solve(in)
					return a, err
				}})
			}
			for _, s := range solvers {
				a, err := s.run()
				if err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
				if err := a.CheckFeasible(in); err != nil {
					t.Fatalf("%s infeasible: %v", s.name, err)
				}
				if v := a.Utility(in); v > ub+1e-6 {
					t.Fatalf("%s value %v exceeds upper bound %v", s.name, v, ub)
				}
			}
		})
	}
}

// TestIntegrationTraceReplayFairness records one arrival schedule and
// replays it under all policies: everyone sees the same offers.
func TestIntegrationTraceReplayFairness(t *testing.T) {
	in, err := generator.CableTV{Channels: 30, Gateways: 8, Seed: 65}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	sc := &videodist.Scenario{Instance: in, Seed: 66}
	if _, err := sc.Run(rec, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := headend.NewOraclePolicy(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	onl, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	offered := -1
	var oracleUtil, thrUtil float64
	for _, pol := range []headend.Policy{oracle, onl, thr} {
		res, err := headend.Replay(in, events, pol)
		if err != nil {
			t.Fatal(err)
		}
		if res.FeasibilityErr != nil || res.OverloadSamples != 0 {
			t.Fatalf("%s: feasibility %v overloads %d", res.Policy, res.FeasibilityErr, res.OverloadSamples)
		}
		if offered < 0 {
			offered = res.StreamsOffered
		} else if res.StreamsOffered != offered {
			t.Fatalf("%s saw %d offers, others %d", res.Policy, res.StreamsOffered, offered)
		}
		switch pol {
		case oracle:
			oracleUtil = res.Utility
		case thr:
			thrUtil = res.Utility
		}
	}
	if oracleUtil < thrUtil*0.9 {
		t.Fatalf("oracle replay %v far below threshold %v", oracleUtil, thrUtil)
	}
}

// TestIntegrationSolveEncodeDecodeSolve: the JSON codec is transparent
// to the solver.
func TestIntegrationSolveEncodeDecodeSolve(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 15, Users: 5, M: 2, MC: 2, Seed: 67, Skew: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a1, r1, err := core.Solve(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mmd.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	decoded, err := mmd.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, r2, err := core.Solve(decoded, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value || !a1.Equal(a2) {
		t.Fatalf("solve after codec round-trip diverged: %v vs %v", r1.Value, r2.Value)
	}
}
