package videodist_test

import (
	"testing"

	videodist "repro"
)

func TestFacadeSolve(t *testing.T) {
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 25, Gateways: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if report.Value <= 0 {
		t.Fatal("zero utility on a dense cable-TV instance")
	}
	if ub := videodist.UpperBound(in); report.Value > ub+1e-9 {
		t.Fatalf("value %v exceeds upper bound %v", report.Value, ub)
	}
}

func TestFacadeOnline(t *testing.T) {
	in, err := videodist.SmallStreams{
		Base: videodist.RandomMMD{Streams: 25, Users: 6, M: 2, MC: 1, Seed: 2, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assn, norm, err := videodist.SolveOnline(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if norm.CompetitiveBound() <= 1 {
		t.Fatal("degenerate competitive bound")
	}
	if err := videodist.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExactAndBaseline(t *testing.T) {
	in, err := videodist.NewRandomSMD(videodist.RandomSMD{Streams: 9, Users: 4, Seed: 3, Skew: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := videodist.SolveExact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	assn, report, err := videodist.Solve(in, videodist.Options{Algorithm: videodist.AlgoPartialEnum})
	if err != nil {
		t.Fatal(err)
	}
	if report.Value > opt+1e-9 {
		t.Fatalf("approximate value %v exceeds OPT %v", report.Value, opt)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	thr, err := videodist.Threshold(in, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thr.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	alpha, err := videodist.LocalSkew(in)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1 {
		t.Fatalf("alpha = %v", alpha)
	}
}
