package videodist_test

import (
	"context"
	"errors"
	"testing"

	videodist "repro"
)

func TestFacadeSolve(t *testing.T) {
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 25, Gateways: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assn, report, err := videodist.Solve(in, videodist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if report.Value <= 0 {
		t.Fatal("zero utility on a dense cable-TV instance")
	}
	if ub := videodist.UpperBound(in); report.Value > ub+1e-9 {
		t.Fatalf("value %v exceeds upper bound %v", report.Value, ub)
	}
}

func TestFacadeOnline(t *testing.T) {
	in, err := videodist.SmallStreams{
		Base: videodist.RandomMMD{Streams: 25, Users: 6, M: 2, MC: 1, Seed: 2, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assn, norm, err := videodist.SolveOnline(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	if norm.CompetitiveBound() <= 1 {
		t.Fatal("degenerate competitive bound")
	}
	if err := videodist.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAdmissionPolicy covers the public policy factory: every
// documented kind builds a usable policy, unknown kinds and nil
// instances fail.
func TestFacadeAdmissionPolicy(t *testing.T) {
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 12, Gateways: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"", "online", "online-unguarded", "threshold", "oracle", "static"} {
		pol, err := videodist.NewAdmissionPolicy(in, kind)
		if err != nil {
			t.Fatalf("NewAdmissionPolicy(%q): %v", kind, err)
		}
		if pol.Name() == "" {
			t.Fatalf("NewAdmissionPolicy(%q): empty name", kind)
		}
	}
	if _, err := videodist.NewAdmissionPolicy(in, "nope"); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	if _, err := videodist.NewAdmissionPolicy(nil, "online"); err == nil {
		t.Fatal("nil instance accepted")
	}
}

// TestFacadeClusterSession exercises the re-exported serving API v2
// surface: session methods, typed results, sentinel errors, and the
// fail-fast backpressure mode through the public package alone.
func TestFacadeClusterSession(t *testing.T) {
	ctx := context.Background()
	in, err := videodist.NewCableTV(videodist.CableTV{Channels: 10, Gateways: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	c, err := videodist.NewCluster(
		[]videodist.ClusterTenant{{Instance: in}},
		videodist.ClusterOptions{Shards: 1, Backpressure: videodist.BackpressureReject},
	)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for s := 0; s < in.NumStreams(); s++ {
		res, err := c.OfferStream(ctx, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if _, err := c.OfferStream(ctx, 7, 0); !errors.Is(err, videodist.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	res, err := c.Resolve(ctx, 0, videodist.ResolveOptions{Install: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OfflineValue <= 0 {
		t.Fatalf("resolve = %+v", res)
	}
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.AllFeasible || fs.Utility <= 0 {
		t.Fatalf("fleet snapshot = %+v", fs)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UserJoin(ctx, 0, 0); !errors.Is(err, videodist.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestFacadeExactAndBaseline(t *testing.T) {
	in, err := videodist.NewRandomSMD(videodist.RandomSMD{Streams: 9, Users: 4, Seed: 3, Skew: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := videodist.SolveExact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	assn, report, err := videodist.Solve(in, videodist.Options{Algorithm: videodist.AlgoPartialEnum})
	if err != nil {
		t.Fatal(err)
	}
	if report.Value > opt+1e-9 {
		t.Fatalf("approximate value %v exceeds OPT %v", report.Value, opt)
	}
	if err := assn.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	thr, err := videodist.Threshold(in, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thr.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	alpha, err := videodist.LocalSkew(in)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1 {
		t.Fatalf("alpha = %v", alpha)
	}
}
